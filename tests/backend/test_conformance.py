"""Cross-backend differential conformance: sim vs native, every version.

The conformance contract (DESIGN.md §6): integer outputs (neighbor
indexes) must be bit-identical; float outputs (agent state, draw
matrices) must be bit-identical in practice because the native twins
mirror the emulator's float64-between-float32-stores numerics, with a
1e-6 absolute tolerance as the documented bound should a platform's
libm disagree.
"""

import pytest

from repro.backend.conformance import (
    FLOAT_TOLERANCE,
    run_differential,
    run_suite,
)


@pytest.mark.parametrize("version", [1, 2, 3, 4, 5, 6])
class TestDifferential:
    def test_version_is_conformant(self, version):
        report = run_differential(version, agents=32, steps=2, seed=7)
        assert report.ok, report.to_dict()

    def test_integer_results_bit_identical(self, version):
        report = run_differential(version, agents=32, steps=2, seed=7)
        for arr in report.arrays:
            if arr.dtype.startswith("int"):
                assert arr.exact, f"{arr.name}: int path must be exact"

    def test_float_paths_within_tolerance(self, version):
        report = run_differential(version, agents=32, steps=2, seed=7)
        assert report.max_abs_diff <= FLOAT_TOLERANCE


class TestSuite:
    def test_full_suite_runs_every_pipeline_version(self):
        reports = run_suite(agents=32, steps=2, seed=11)
        assert [r.version for r in reports] == [1, 2, 3, 4, 5, 6]
        assert all(r.ok for r in reports)

    def test_reports_serialize(self):
        (report,) = run_suite(versions=(5,), agents=16, steps=1, seed=3)
        d = report.to_dict()
        assert d["version"] == 5
        assert d["ok"] is True
        assert "matrices" in d["arrays"]
        for entry in d["arrays"].values():
            assert {"dtype", "exact", "max_abs_diff"} <= set(entry)

    def test_v5_compares_draw_matrices(self):
        report = run_differential(5, agents=16, steps=1, seed=3)
        names = {a.name for a in report.arrays}
        assert "matrices" in names

    def test_observed_exactness_holds(self):
        # Stronger than the contract: on any one machine the float64
        # mirroring makes every array bit-exact.  If this ever fails
        # while the tolerance tests pass, the twins drifted from the
        # emulator's operation order — fix the twin, don't widen this.
        reports = run_suite(agents=32, steps=2, seed=7)
        assert all(r.exact for r in reports)


@pytest.mark.parametrize("version", [1, 2, 3, 4, 5, 6])
class TestCounterConformance:
    """Profiler counters must not depend on the execution substrate.

    The native backend derives its counters by SIMT replay over the
    same (bit-identical) memory the simulator would see, so every
    counter — not approximately, *exactly* — must match the simulator's
    for the same workload.
    """

    @staticmethod
    def _profile(version, backend):
        from repro.cupp.device import Device
        from repro.gpusteer.emulated import EmulatedBoids
        from repro.prof.session import ProfSession

        boids = EmulatedBoids(
            32, version, seed=7, device=Device(backend=backend),
            threads_per_block=16,
        )
        session = ProfSession()
        with session:
            for _ in range(2):
                boids.step()
        return session

    def test_native_counters_equal_sim_counters_exactly(self, version):
        sim = self._profile(version, "sim")
        native = self._profile(version, "native")
        assert set(sim.kernels) == set(native.kernels)
        for name, kc_sim in sim.kernels.items():
            kc_nat = native.kernels[name]
            d_sim, d_nat = kc_sim.to_dict(), kc_nat.to_dict()
            # The substrate identity and its clock are the only fields
            # allowed to differ; every counter must be equal.
            for key in ("backend", "measured_s"):
                d_sim.pop(key), d_nat.pop(key)
            assert d_sim == d_nat, f"{name}: counter drift across backends"
            assert kc_sim.backend == "sim"
            assert kc_nat.backend == "native"

    def test_sim_backend_clock_is_the_model(self, version):
        sim = self._profile(version, "sim")
        for kc in sim.kernels.values():
            assert kc.measured_s == pytest.approx(kc.modelled_s)
