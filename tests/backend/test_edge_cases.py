"""Conformance edge cases, parametrized over both backends.

The differential suite covers the pipeline at steady state; these are
the boundary shapes — empty vectors, a single-thread grid over a larger
population, remainder chunk splits, and const (copy-back-elided)
arguments — where a vectorized twin could silently diverge from the
thread-loop emulator.
"""

import numpy as np
import pytest

from repro.backend.base import BACKEND_KINDS
from repro.cuda import CudaMachine, global_
from repro.cupp import ConstRef, Device, DeviceVector, Kernel, Ref, Vector
from repro.cupp.multidevice import DeviceGroup
from repro.gpusteer.kernels_emu import MAX_NEIGHBORS, NO_NEIGHBOR, find_neighbors_v1
from repro.simgpu import OpClass
from repro.simgpu import devicelib as dl
from repro.simgpu.arch import G80_8800GTS
from repro.simgpu.isa import op, st


@global_
def _gather_sum(ctx, src: ConstRef[DeviceVector], out: Ref[DeviceVector]):
    i = ctx.global_thread_id
    total = 0.0
    for j in range(len(src)):
        v = yield from dl.ld_auto(src, j)
        total += v
        yield op(OpClass.FADD)
    yield st(out.view, i, total)


@pytest.mark.parametrize("kind", BACKEND_KINDS)
class TestEmptyVectors:
    def test_kernel_over_empty_source(self, kind):
        dev = Device(backend=kind)
        src = Vector(np.zeros(0, np.float32), dtype=np.float32)
        out = Vector(np.full(4, -1.0, np.float32), dtype=np.float32)
        Kernel(_gather_sum, 1, 4)(dev, src, out)
        np.testing.assert_array_equal(out.to_numpy(), np.zeros(4, np.float32))

    def test_empty_roundtrip(self, kind):
        dev = Device(backend=kind)
        empty = Vector(np.zeros(0, np.float32), dtype=np.float32)
        src = Vector(np.ones(2, np.float32), dtype=np.float32)
        out = Vector(np.zeros(2, np.float32), dtype=np.float32)
        Kernel(_gather_sum, 1, 2)(dev, src, out)
        assert empty.to_numpy().size == 0


@pytest.mark.parametrize("kind", BACKEND_KINDS)
class TestSingleThreadGrid:
    def test_one_thread_writes_one_agent(self, kind):
        """grid=1, block=1 over n=4 agents: only agent 0's slots move."""
        dev = Device(backend=kind)
        n = 4
        pos = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 2, 0], [9, 9, 9]], np.float32
        )
        positions = Vector(pos.reshape(-1), dtype=np.float32)
        results = Vector(
            np.full(n * MAX_NEIGHBORS, NO_NEIGHBOR, np.int32), dtype=np.int32
        )
        Kernel(find_neighbors_v1, 1, 1)(dev, positions, 5.0, results)
        got = results.to_numpy().reshape(n, MAX_NEIGHBORS)
        # Agent 0 sees 1 (d2=1) then 2 (d2=4); agent 3 is out of radius.
        np.testing.assert_array_equal(got[0, :2], [1, 2])
        assert (got[0, 2:] == NO_NEIGHBOR).all()
        # Threads 1..3 never ran, so their rows are untouched.
        assert (got[1:] == NO_NEIGHBOR).all()

    def test_partial_grids_agree_across_backends(self, kind):
        if kind == "sim":
            pytest.skip("cross-backend comparison runs once, under native")
        rng = np.random.default_rng(5)
        pos = rng.uniform(-4, 4, size=(8, 3)).astype(np.float32)
        rows = {}
        for k in BACKEND_KINDS:
            dev = Device(backend=k)
            positions = Vector(pos.reshape(-1), dtype=np.float32)
            results = Vector(
                np.full(8 * MAX_NEIGHBORS, NO_NEIGHBOR, np.int32),
                dtype=np.int32,
            )
            # 3 of 8 agents — a remainder-shaped partial launch.
            Kernel(find_neighbors_v1, 1, 3)(dev, positions, 6.0, results)
            rows[k] = results.to_numpy()
        np.testing.assert_array_equal(rows["sim"], rows["native"])


class TestChunkBoundsRemainder:
    def test_remainder_split_over_mixed_group(self):
        machine = CudaMachine([G80_8800GTS] * 3, backend="mixed")
        group = DeviceGroup(machine)
        assert [d.backend_kind for d in group.devices] == [
            "sim", "native", "sim",
        ]
        assert group.chunk_bounds(10) == [(0, 4), (4, 7), (7, 10)]
        assert group.chunk_bounds(3) == [(0, 1), (1, 2), (2, 3)]
        assert group.chunk_bounds(2) == [(0, 1), (1, 2), (2, 2)]


@pytest.mark.parametrize("kind", BACKEND_KINDS)
class TestConstArguments:
    def test_const_copy_back_elided(self, kind):
        dev = Device(backend=kind)
        src = Vector(np.arange(4, dtype=np.float32), dtype=np.float32)
        out = Vector(np.zeros(4, np.float32), dtype=np.float32)
        stats = Kernel(_gather_sum, 1, 4)(dev, src, out)
        assert stats.elided_writebacks >= 1
        assert stats.writebacks == 1  # only the non-const out
        np.testing.assert_array_equal(
            out.to_numpy(), np.full(4, 6.0, np.float32)
        )
