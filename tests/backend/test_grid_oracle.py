"""Differential oracle: grid-bucketed vs all-pairs keep-7 under ties.

The conformance suite compares random flocks, where exact distance ties
are measure-zero.  This oracle *manufactures* them: eight agents at the
corners of a cube are all exactly ``sqrt(12)`` from the center agent —
an 8-way tie straddling the keep-7 cut, spread across eight different
grid cells so the grid's cell-by-cell scan order differs maximally from
the all-pairs index order.  Every engine must still keep exactly the
seven lexicographically smallest ``(d2, index)`` pairs:

* the emulated all-pairs kernel (v2) and the grid kernel (v6),
* their native numpy twins,
* the three host engines (pure, blocked numpy, kdtree).

This is the test that retires the documented keep-7 tie caveat.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuda import CudaMachine
from repro.cupp import Device
from repro.gpusteer import EmulatedBoids
from repro.steer import DEFAULT_PARAMS, Vec3
from repro.steer.neighbors import (
    NO_NEIGHBOR,
    neighbor_search_all_kdtree,
    neighbor_search_all_numpy,
    neighbor_search_all_pure,
)

N = 32
RADIUS = DEFAULT_PARAMS.search_radius  # 9.0; cube side 4 fits inside


def _tie_positions() -> np.ndarray:
    """32 agents; agent 0 sees an 8-way exact tie at the keep-7 cut."""
    pos = np.zeros((N, 3), dtype=np.float32)
    corners = [
        (sx * 2.0, sy * 2.0, sz * 2.0)
        for sx in (-1, 1)
        for sy in (-1, 1)
        for sz in (-1, 1)
    ]
    pos[1:9] = corners  # d2 = 12 exactly, eight different grid cells
    pos[9] = (1.0, 0.0, 0.0)  # d2 = 1 — closer, always kept
    pos[10] = (0.0, 1.0, 0.0)  # d2 = 1 — ties with agent 9 as well
    # The rest: isolated, far outside everyone's radius.
    for i in range(11, N):
        pos[i] = (100.0 + 30.0 * i, 0.0, 0.0)
    return pos


POS = _tie_positions()


def _expected_keep7() -> "list[tuple[int, ...]]":
    """The oracle: smallest seven (d2, index) pairs, brute force."""
    p64 = POS.astype(np.float64)
    rows = []
    for i in range(N):
        d2 = np.sum((p64 - p64[i]) ** 2, axis=1)
        pairs = sorted(
            (float(d2[j]), j)
            for j in range(N)
            if j != i and d2[j] < RADIUS * RADIUS
        )[:7]
        rows.append(tuple(sorted(j for _, j in pairs)))
    return rows


EXPECTED = _expected_keep7()


def _row_sets(results: np.ndarray) -> "list[tuple[int, ...]]":
    return [
        tuple(sorted(int(j) for j in row if j != NO_NEIGHBOR))
        for row in np.asarray(results)
    ]


def _host_sets(engine) -> np.ndarray:
    p64 = POS.astype(np.float64)
    if engine is neighbor_search_all_pure:
        return engine([Vec3(*row) for row in p64], DEFAULT_PARAMS)
    return engine(p64, DEFAULT_PARAMS)


def _device_sets(version: int, backend: str) -> np.ndarray:
    from repro.simgpu import scaled_arch

    arch = scaled_arch(f"oracle-{backend}", 2, memory_bytes=1 << 22)
    device = Device(machine=CudaMachine([arch], backend=backend))
    eb = EmulatedBoids(N, version=version, seed=0, device=device)
    eb._write_vec3(eb.positions, POS)
    eb.step()
    return eb.neighbor_sets()


@pytest.fixture(scope="module")
def device_results() -> "dict[tuple[int, str], np.ndarray]":
    return {
        (version, backend): _device_sets(version, backend)
        for version in (2, 6)
        for backend in ("sim", "native")
    }


class TestManufacturedTies:
    def test_the_tie_actually_straddles_the_cut(self):
        # Ten in-radius candidates for agent 0, eight of them at the
        # same exact distance — the selection is forced to split a tie.
        p64 = POS.astype(np.float64)
        d2 = np.sum((p64 - p64[0]) ** 2, axis=1)[1:11]
        assert np.count_nonzero(d2 == 12.0) == 8
        assert EXPECTED[0] == (1, 2, 3, 4, 5, 9, 10)

    @pytest.mark.parametrize("version", [2, 6])
    @pytest.mark.parametrize("backend", ["sim", "native"])
    def test_device_engines_match_the_oracle(
        self, device_results, version, backend
    ):
        assert _row_sets(device_results[(version, backend)]) == EXPECTED

    @pytest.mark.parametrize("version", [2, 6])
    def test_backends_bit_identical_under_ties(self, device_results, version):
        assert np.array_equal(
            device_results[(version, "sim")],
            device_results[(version, "native")],
        )

    def test_grid_bit_identical_to_all_pairs(self, device_results):
        # The satellite's headline: grid-bucketed (v6) and all-pairs
        # (v2) produce byte-identical result arrays, ties included.
        for backend in ("sim", "native"):
            assert np.array_equal(
                device_results[(2, backend)],
                device_results[(6, backend)],
            )

    @pytest.mark.parametrize(
        "engine",
        [
            neighbor_search_all_pure,
            neighbor_search_all_numpy,
            neighbor_search_all_kdtree,
        ],
        ids=["pure", "numpy", "kdtree"],
    )
    def test_host_engines_match_the_oracle(self, engine):
        assert _row_sets(_host_sets(engine)) == EXPECTED

    def test_host_engines_agree_elementwise(self):
        pure = _host_sets(neighbor_search_all_pure)
        fast = _host_sets(neighbor_search_all_numpy)
        tree = _host_sets(neighbor_search_all_kdtree)
        assert _row_sets(pure) == _row_sets(fast) == _row_sets(tree)
