"""The native backend as a device: same surface, different substrate."""

import numpy as np
import pytest

from repro.backend.base import (
    BACKEND_KINDS,
    ExecutionBackend,
    normalize_backends,
    resolve_backend,
)
from repro.backend.native import EwmaCost, NativeDevice
from repro.common.errors import ConfigurationError
from repro.cuda import CudaMachine, global_
from repro.cupp import ConstRef, CuppUsageError, Device, DeviceVector, Kernel, Ref, Vector
from repro.simgpu import OpClass
from repro.simgpu import devicelib as dl
from repro.simgpu.arch import G80_8800GTS
from repro.simgpu.dims import Dim3
from repro.simgpu.isa import op, st


class TestBackendSpecs:
    def test_resolve_accepts_both_kinds(self):
        for kind in BACKEND_KINDS:
            assert resolve_backend(kind) == kind
        assert resolve_backend("  Native ") == "native"

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="sim, native"):
            resolve_backend("warp")

    def test_normalize_single_kind_fans_out(self):
        assert normalize_backends("sim", 3) == ["sim", "sim", "sim"]
        assert normalize_backends("native", 2) == ["native", "native"]

    def test_normalize_mixed_alternates(self):
        assert normalize_backends("mixed", 4) == ["sim", "native", "sim", "native"]
        assert normalize_backends("mixed", 1) == ["sim"]

    def test_normalize_explicit_list(self):
        assert normalize_backends(["native", "sim"], 2) == ["native", "sim"]

    def test_normalize_list_length_mismatch(self):
        with pytest.raises(ConfigurationError, match="2 entries for 3 devices"):
            normalize_backends(["sim", "native"], 3)

    def test_normalize_rejects_unknown_with_mixed_hint(self):
        with pytest.raises(ConfigurationError, match="mixed"):
            normalize_backends("gpu", 2)

    def test_normalize_needs_a_device(self):
        with pytest.raises(ConfigurationError, match="at least one device"):
            normalize_backends("sim", 0)


class TestDeviceConstruction:
    def test_default_device_is_sim(self):
        assert Device().backend_kind == "sim"

    def test_backend_kwarg_selects_native(self):
        dev = Device(backend="native")
        assert dev.backend_kind == "native"
        assert isinstance(dev.backend, NativeDevice)
        assert isinstance(dev.backend, ExecutionBackend)
        # The historical alias still reaches the same object.
        assert dev.sim is dev.backend

    def test_backend_and_machine_are_mutually_exclusive(self):
        with pytest.raises(CuppUsageError, match="machine or a backend"):
            Device(machine=CudaMachine(), backend="native")

    def test_machine_mixed_kinds(self):
        machine = CudaMachine([G80_8800GTS, G80_8800GTS], backend="mixed")
        kinds = [d.backend_kind for d in machine.devices]
        assert kinds == ["sim", "native"]

    def test_native_properties_match_sim(self):
        sim_props = Device(backend="sim").properties()
        nat_props = Device(backend="native").properties()
        assert nat_props == sim_props


@global_
def _double(ctx, src: ConstRef[DeviceVector], out: Ref[DeviceVector]):
    """Unregistered generator kernel — exercises the SIMT fallback."""
    i = ctx.global_thread_id
    v = yield from dl.ld_auto(src, i)
    yield op(OpClass.FMUL)
    yield st(out.view, i, v * 2.0)


class TestNativeExecution:
    def test_memory_roundtrip_through_kernel(self):
        dev = Device(backend="native")
        data = np.arange(8, dtype=np.float32)
        src = Vector(data, dtype=np.float32)
        out = Vector(np.zeros(8, np.float32), dtype=np.float32)
        Kernel(_double, 1, 8)(dev, src, out)
        np.testing.assert_array_equal(out.to_numpy(), data * 2.0)

    def test_simt_fallback_matches_sim(self):
        results = {}
        for kind in BACKEND_KINDS:
            dev = Device(backend=kind)
            src = Vector(np.linspace(0, 1, 16).astype(np.float32), dtype=np.float32)
            out = Vector(np.zeros(16, np.float32), dtype=np.float32)
            Kernel(_double, 1, 16)(dev, src, out)
            results[kind] = out.to_numpy()
        np.testing.assert_array_equal(results["sim"], results["native"])

    def test_validate_launch_enforced_on_native(self):
        dev = Device(backend="native")
        with pytest.raises(ConfigurationError, match="non-zero"):
            dev.backend.validate_launch(Dim3(0, 1, 1), Dim3(32, 1, 1))
        with pytest.raises(ConfigurationError, match="exceeds the limit"):
            dev.backend.validate_launch(Dim3(1, 1, 1), Dim3(1024, 1, 1))

    def test_duration_is_measured_wall_clock(self):
        dev = Device(backend="native")
        src = Vector(np.ones(8, np.float32), dtype=np.float32)
        out = Vector(np.zeros(8, np.float32), dtype=np.float32)
        Kernel(_double, 1, 8)(dev, src, out)
        result = dev.backend.launches[-1]
        assert result.elapsed_s > 0.0
        assert dev.backend.duration_s(result) == result.elapsed_s

    def test_pool_attaches_to_native_device(self):
        dev = Device(backend="native")
        pool = dev.enable_pool()
        assert dev.pool is pool
        src = Vector(np.ones(4, np.float32), dtype=np.float32)
        out = Vector(np.zeros(4, np.float32), dtype=np.float32)
        Kernel(_double, 1, 4)(dev, src, out)
        np.testing.assert_array_equal(out.to_numpy(), np.full(4, 2.0, np.float32))


class TestEwmaCost:
    def test_first_observation_replaces_seed(self):
        cost = EwmaCost()
        assert cost.predict(2.0) == 2.0  # seed ratio 1.0
        cost.observe(modelled_s=1.0, measured_s=3.0)
        assert cost.predict(2.0) == pytest.approx(6.0)

    def test_later_observations_smooth(self):
        cost = EwmaCost(alpha=0.5)
        cost.observe(1.0, 4.0)
        cost.observe(1.0, 2.0)
        # ratio = 0.5 * 2 + 0.5 * 4 = 3
        assert cost.predict(1.0) == pytest.approx(3.0)
