"""The kernel-prof bench experiment: registered, gated, and validated."""

import pytest

from repro.bench.__main__ import EXPERIMENTS
from repro.bench.regression import EXCLUDED_EXPERIMENTS, flatten_scalars


@pytest.fixture(scope="module")
def experiment():
    from repro.bench.harness import run_kernel_prof

    return run_kernel_prof()


class TestKernelProf:
    def test_registered_and_gated(self):
        assert "kernel-prof" in EXPERIMENTS
        # Fully deterministic (emulated counters + analytic model), so
        # it belongs inside the perf-regression gate.
        assert "kernel-prof" not in EXCLUDED_EXPERIMENTS

    def test_v1_vs_v5_story(self, experiment):
        data = experiment.data
        assert data["v1_to_v5_speedup"] > 1.0
        assert data["v1_uncoalesced_load_finding"] is True
        assert data["v5_uncoalesced_load_findings"] == 0

    def test_block_size_suggestion_validated(self, experiment):
        validation = experiment.data["block_size_validation"]
        assert validation["validated"] is True
        assert validation["measured_speedup"] > 1.0
        assert validation["suggested_threads_per_block"] > (
            experiment.data["threads_per_block"]
        )

    def test_scalars_flatten_for_the_gate(self, experiment):
        flat = flatten_scalars(experiment.data)
        assert flat["v1_to_v5_speedup"] > 1.0
        assert any(k.startswith("diff.") for k in flat)

    def test_report_prints_the_validation(self, experiment):
        assert "estimated" in experiment.report
        assert "measured" in experiment.report
