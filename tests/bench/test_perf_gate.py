"""The perf-regression gate: flattening, direction, compare, CLI wiring."""

import copy
import json
from pathlib import Path

from repro.bench.regression import (
    EXCLUDED_EXPERIMENTS,
    compare,
    direction_of,
    flatten_scalars,
    load_snapshot,
    snapshot,
    write_snapshot,
)

BASELINE_PATH = str(
    Path(__file__).resolve().parents[2] / "benchmarks" / "baseline.json"
)


class TestDirection:
    def test_latency_like_metrics_are_lower_is_better(self):
        for name in ("p99_ms", "batched.latency", "launches", "shed",
                     "max_queue_depth", "bytes_by_cause.eager"):
            assert direction_of(name) == "lower", name

    def test_throughput_like_metrics_are_higher_is_better(self):
        for name in ("speedups.5", "throughput_rps", "updates_per_second",
                     "throughput_gain"):
            assert direction_of(name) == "higher", name

    def test_lower_tokens_win_ties(self):
        assert direction_of("throughput_p99") == "lower"

    def test_shape_constants_are_band(self):
        assert direction_of("neighbor_share") == "band"


class TestFlatten:
    def test_nested_numeric_leaves_get_dotted_keys(self):
        data = {"a": {"b": 1, "c": 2.5}, "d": 3}
        assert flatten_scalars(data) == {"a.b": 1.0, "a.c": 2.5, "d": 3.0}

    def test_non_numeric_leaves_are_skipped(self):
        data = {
            "flag": True,
            "name": "v5",
            "rows": [1, 2, 3],
            "obj": object(),
            "n": 7,
        }
        assert flatten_scalars(data) == {"n": 7.0}

    def test_integer_dict_keys_stringify(self):
        assert flatten_scalars({"speedups": {0: 1.0}}) == {"speedups.0": 1.0}


def _snap(**experiments):
    return {"format": 1, "experiments": experiments}


class TestCompare:
    def test_within_tolerance_is_silent(self):
        base = _snap(e={"p99_ms": 100.0})
        assert compare(base, _snap(e={"p99_ms": 110.0}), 25.0) == []

    def test_wrong_direction_is_a_regression(self):
        base = _snap(e={"p99_ms": 100.0, "throughput_rps": 100.0})
        current = _snap(e={"p99_ms": 200.0, "throughput_rps": 50.0})
        deltas = compare(base, current, 25.0)
        assert [d.verdict for d in deltas] == ["regression", "regression"]
        assert all(d.failed for d in deltas)

    def test_good_direction_is_an_improvement_not_a_failure(self):
        base = _snap(e={"p99_ms": 100.0, "throughput_rps": 100.0})
        current = _snap(e={"p99_ms": 10.0, "throughput_rps": 500.0})
        deltas = compare(base, current, 25.0)
        assert [d.verdict for d in deltas] == ["improvement", "improvement"]
        assert not any(d.failed for d in deltas)

    def test_band_metrics_fail_on_any_drift(self):
        base = _snap(e={"neighbor_share": 0.5})
        for current_value in (0.1, 0.9):
            deltas = compare(base, _snap(e={"neighbor_share": current_value}))
            assert deltas[0].verdict == "regression"

    def test_missing_metric_fails_the_gate(self):
        deltas = compare(_snap(e={"p99_ms": 1.0}), _snap(e={}), 25.0)
        assert deltas[0].verdict == "missing" and deltas[0].failed

    def test_per_metric_tolerance_override(self):
        base = _snap(e={"p99_ms": 100.0})
        current = _snap(e={"p99_ms": 150.0})
        assert compare(base, current, 25.0)[0].failed
        assert compare(base, current, 25.0, {"e.p99_ms": 60.0}) == []

    def test_zero_baseline_only_flags_nonzero_current(self):
        base = _snap(e={"shed": 0.0, "expired": 0.0})
        current = _snap(e={"shed": 5.0, "expired": 0.0})
        (delta,) = compare(base, current, 25.0)
        assert delta.metric == "shed" and delta.failed


class TestCommittedBaseline:
    """The acceptance scenario, against the repo's real baseline file."""

    def test_fresh_snapshot_matches_committed_baseline(self):
        baseline = load_snapshot(BASELINE_PATH)
        # Re-run a representative pair (full snapshot = minutes of CI,
        # covered by the workflow's perf-gate job).
        from repro.bench.__main__ import EXPERIMENTS

        subset = {k: EXPERIMENTS[k] for k in ("fig-5.5", "fig-6.2")}
        fresh = snapshot(subset)
        trimmed = {
            "format": baseline["format"],
            "experiments": {
                k: baseline["experiments"][k] for k in subset
            },
        }
        deltas = compare(trimmed, fresh, tolerance_pct=25.0)
        assert [d for d in deltas if d.failed] == []

    def test_injected_regression_trips_the_gate(self):
        baseline = load_snapshot(BASELINE_PATH)
        doctored = copy.deepcopy(baseline)
        doctored["experiments"]["fig-6.2"]["speedups.5"] *= 4.0
        deltas = compare(
            doctored,
            {
                "format": 1,
                "experiments": {
                    "fig-6.2": baseline["experiments"]["fig-6.2"]
                },
            },
            tolerance_pct=25.0,
        )
        failing = [d for d in deltas if d.failed]
        assert any(
            d.metric == "speedups.5" and d.verdict == "regression"
            for d in failing
        )

    def test_excluded_experiments_never_snapshotted(self):
        baseline = load_snapshot(BASELINE_PATH)
        for name in EXCLUDED_EXPERIMENTS:
            assert name not in baseline["experiments"]

    def test_snapshot_round_trips_to_disk(self, tmp_path):
        snap = _snap(e={"p99_ms": 1.25})
        path = str(tmp_path / "snap.json")
        write_snapshot(path, snap)
        assert load_snapshot(path) == snap
        # Stable formatting: sorted keys + trailing newline (diffable).
        text = (tmp_path / "snap.json").read_text()
        assert text.endswith("\n")
        assert text == json.dumps(snap, indent=1, sort_keys=True) + "\n"
