"""Shared infrastructure: units, rng, error roots."""

import numpy as np
import pytest

from repro.common import GIB, KIB, MIB, ReproError, cycles_to_seconds, seconds_to_cycles
from repro.common.rng import make_rng
from repro.common.units import align_up


class TestUnits:
    def test_byte_sizes(self):
        assert KIB == 1024
        assert MIB == 1024**2
        assert GIB == 1024**3

    def test_cycle_roundtrip(self):
        s = cycles_to_seconds(1_200_000, 1.2e9)
        assert s == pytest.approx(1e-3)
        assert seconds_to_cycles(s, 1.2e9) == pytest.approx(1_200_000)

    def test_zero_clock_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(10, 0)
        with pytest.raises(ValueError):
            seconds_to_cycles(10, -1)

    def test_align_up(self):
        assert align_up(0, 256) == 0
        assert align_up(1, 256) == 256
        assert align_up(256, 256) == 256
        assert align_up(257, 256) == 512

    def test_align_up_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            align_up(10, 0)


class TestRng:
    def test_deterministic_default(self):
        a = make_rng().random(4)
        b = make_rng().random(4)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_stream(self):
        a = make_rng(1).random(4)
        b = make_rng(2).random(4)
        assert not np.array_equal(a, b)


class TestErrorRoots:
    def test_every_layer_derives_from_repro_error(self):
        from repro.cupp import CuppError
        from repro.simgpu import DeviceMemoryError, KernelFault
        from repro.simgpu.block import BarrierDeadlock

        for exc in (CuppError, DeviceMemoryError, KernelFault, BarrierDeadlock):
            assert issubclass(exc, ReproError)
