"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.simgpu import ArchSpec, SimDevice


@pytest.fixture
def tiny_arch() -> ArchSpec:
    """A 2-multiprocessor device with 1 MiB of memory — fast to emulate."""
    return ArchSpec(
        name="tiny-g80",
        multiprocessors=2,
        device_memory_bytes=1 << 20,
    )


@pytest.fixture
def device(tiny_arch: ArchSpec) -> SimDevice:
    return SimDevice(tiny_arch)


@pytest.fixture
def big_device() -> SimDevice:
    """The full 8800 GTS configuration (12 MPs, 640 MiB)."""
    return SimDevice()
