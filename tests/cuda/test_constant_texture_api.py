"""CUDA API surface for constant symbols and texture references."""

import numpy as np
import pytest

from repro.cuda import CudaMachine, CudaRuntime, cudaError
from repro.simgpu import scaled_arch
from repro.simgpu.caches import TextureReference
from repro.simgpu.memory import DevicePtr


@pytest.fixture
def rt() -> CudaRuntime:
    return CudaRuntime(CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 20)]))


class TestConstantSymbols:
    def test_symbol_allocation_and_write(self, rt):
        err, sym = rt.constant_symbol(np.float32, 16)
        assert err.ok
        data = np.arange(16, dtype=np.float32)
        assert rt.cudaMemcpyToSymbol(sym, data).ok
        np.testing.assert_array_equal(sym._raw(), data)

    def test_symbol_exhaustion_returns_error_code(self, rt):
        err, sym = rt.constant_symbol(np.float32, 16 * 1024)  # 64 KiB
        assert err.ok
        err, sym2 = rt.constant_symbol(np.float32, 1)
        assert err is cudaError.cudaErrorMemoryAllocation
        assert sym2 is None

    def test_oversized_write_rejected(self, rt):
        _, sym = rt.constant_symbol(np.float32, 4)
        err = rt.cudaMemcpyToSymbol(sym, np.zeros(8, np.float32))
        assert err is cudaError.cudaErrorInvalidValue

    def test_write_counts_as_memcpy(self, rt):
        _, sym = rt.constant_symbol(np.float32, 4)
        before = rt.memcpy_count
        rt.cudaMemcpyToSymbol(sym, np.zeros(4, np.float32))
        assert rt.memcpy_count == before + 1


class TestTextureBinding:
    def test_bind_and_unbind(self, rt):
        err, ptr = rt.cudaMalloc(64)
        tex = TextureReference()
        assert rt.cudaBindTexture(tex, ptr, np.float32, 16).ok
        assert tex.bound
        assert rt.cudaUnbindTexture(tex).ok
        assert not tex.bound

    def test_bind_to_invalid_pointer_rejected(self, rt):
        tex = TextureReference()
        err = rt.cudaBindTexture(tex, DevicePtr(4), np.float32, 16)
        assert err is cudaError.cudaErrorInvalidDevicePointer
        assert not tex.bound

    def test_bind_overrun_rejected(self, rt):
        _, ptr = rt.cudaMalloc(64)
        tex = TextureReference()
        err = rt.cudaBindTexture(tex, ptr, np.float32, 1000)
        assert err is cudaError.cudaErrorInvalidDevicePointer

    def test_rebinding_replaces_window(self, rt):
        _, a = rt.cudaMalloc(64)
        _, b = rt.cudaMalloc(64)
        rt.cudaMemcpy(
            a, np.full(16, 1.0, np.float32), 64,
            __import__("repro.cuda", fromlist=["cudaMemcpyKind"]).cudaMemcpyKind.cudaMemcpyHostToDevice,
        )
        tex = TextureReference()
        rt.cudaBindTexture(tex, a, np.float32, 16)
        first = tex._raw()[0]
        rt.cudaBindTexture(tex, b, np.float32, 16)
        second = tex._raw()[0]
        assert first == 1.0
        assert second == 0.0
