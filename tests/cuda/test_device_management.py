"""Device management API (§3.2.1)."""

import pytest

from repro.cuda import CudaMachine, CudaRuntime, cudaDeviceProp, cudaError
from repro.simgpu import ArchSpec, scaled_arch


@pytest.fixture
def two_device_machine() -> CudaMachine:
    return CudaMachine(
        [
            scaled_arch("small", 4, memory_bytes=1 << 24),
            scaled_arch("large", 16, memory_bytes=1 << 26),
        ]
    )


class TestSetDevice:
    def test_set_device_binds(self, two_device_machine):
        rt = CudaRuntime(two_device_machine)
        assert rt.cudaSetDevice(1).ok
        assert rt.device.arch.name == "large"

    def test_rebinding_is_an_error(self, two_device_machine):
        # One host thread is bound to at most one device (§3.2.1).
        rt = CudaRuntime(two_device_machine)
        assert rt.cudaSetDevice(0).ok
        assert rt.cudaSetDevice(1) is cudaError.cudaErrorSetOnActiveProcess

    def test_invalid_index_rejected(self, two_device_machine):
        rt = CudaRuntime(two_device_machine)
        assert rt.cudaSetDevice(7) is cudaError.cudaErrorInvalidDevice

    def test_device_0_selected_implicitly(self, two_device_machine):
        # "If no device has been selected before the first kernel call,
        # device 0 is automatically selected."
        rt = CudaRuntime(two_device_machine)
        err, ptr = rt.cudaMalloc(64)
        assert err.ok
        err, dev = rt.cudaGetDevice()
        assert dev == 0
        # The implicit binding is just as permanent as an explicit one.
        assert rt.cudaSetDevice(1) is cudaError.cudaErrorSetOnActiveProcess


class TestChooseDevice:
    def test_choose_by_memory(self, two_device_machine):
        rt = CudaRuntime(two_device_machine)
        err, dev = rt.cudaChooseDevice(cudaDeviceProp(totalGlobalMem=1 << 25))
        assert err.ok
        assert dev == 1

    def test_choose_prefers_more_multiprocessors(self, two_device_machine):
        rt = CudaRuntime(two_device_machine)
        err, dev = rt.cudaChooseDevice(cudaDeviceProp())
        assert err.ok and dev == 1

    def test_unsatisfiable_request(self, two_device_machine):
        rt = CudaRuntime(two_device_machine)
        err, dev = rt.cudaChooseDevice(cudaDeviceProp(supportsAtomics=True))
        assert err is cudaError.cudaErrorInvalidValue
        assert dev == -1


class TestProperties:
    def test_get_device_properties(self, two_device_machine):
        rt = CudaRuntime(two_device_machine)
        err, prop = rt.cudaGetDeviceProperties(1)
        assert err.ok
        assert prop.multiProcessorCount == 16
        assert prop.warpSize == 32

    def test_invalid_device_properties(self, two_device_machine):
        rt = CudaRuntime(two_device_machine)
        err, prop = rt.cudaGetDeviceProperties(9)
        assert err is cudaError.cudaErrorInvalidDevice
        assert prop is None

    def test_device_count(self, two_device_machine):
        rt = CudaRuntime(two_device_machine)
        err, n = rt.cudaGetDeviceCount()
        assert err.ok and n == 2
