"""Execution control (§3.2.2) and function qualifiers (§3.1.1)."""

import numpy as np
import pytest

from repro.cuda import (
    CudaMachine,
    CudaQualifierError,
    CudaRuntime,
    cudaError,
    cudaMemcpyKind,
    device_fn,
    global_,
    host_fn,
)
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st
from repro.simgpu.memory import DeviceArrayView

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost


@pytest.fixture
def rt() -> CudaRuntime:
    return CudaRuntime(CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)]))


@global_
def double_kernel(ctx, arr):
    i = ctx.global_thread_id
    v = yield ld(arr, i)
    yield op(OpClass.FMUL)
    yield st(arr, i, v * 2.0)


def make_view(rt, dtype, count):
    _, ptr = rt.cudaMalloc(np.dtype(dtype).itemsize * count)
    return DeviceArrayView(rt.device.memory, ptr, np.dtype(dtype), count)


class TestThreeStepLaunch:
    def test_full_protocol(self, rt):
        arr = make_view(rt, np.float32, 64)
        data = np.arange(64, dtype=np.float32)
        rt.cudaMemcpy(arr.ptr, data, data.nbytes, H2D)

        assert rt.cudaConfigureCall(2, 32).ok  # step 1
        assert rt.cudaSetupArgument(arr, 0, size=8).ok  # step 2
        assert rt.cudaLaunch(double_kernel).ok  # step 3

        back = np.zeros_like(data)
        rt.cudaMemcpy(back, arr.ptr, data.nbytes, D2H)
        np.testing.assert_array_equal(back, data * 2)

    def test_launch_without_configure_fails(self, rt):
        assert (
            rt.cudaLaunch(double_kernel)
            is cudaError.cudaErrorInvalidConfiguration
        )

    def test_setup_argument_without_configure_fails(self, rt):
        assert rt.cudaSetupArgument(1, 0) is cudaError.cudaErrorInvalidValue

    def test_configuration_is_consumed_by_launch(self, rt):
        arr = make_view(rt, np.float32, 32)
        rt.cudaConfigureCall(1, 32)
        rt.cudaSetupArgument(arr, 0, size=8)
        assert rt.cudaLaunch(double_kernel).ok
        # Second launch without reconfiguring must fail.
        assert (
            rt.cudaLaunch(double_kernel)
            is cudaError.cudaErrorInvalidConfiguration
        )

    def test_arguments_ordered_by_offset_not_push_order(self, rt):
        seen = {}

        @global_
        def k(ctx, a, b):
            seen["a"], seen["b"] = a, b
            yield op(OpClass.IADD)

        rt.cudaConfigureCall(1, 1)
        rt.cudaSetupArgument(20, 4, size=4)  # second slot pushed first
        rt.cudaSetupArgument(10, 0, size=4)
        assert rt.cudaLaunch(k).ok
        assert seen == {"a": 10, "b": 20}

    def test_overlapping_arguments_rejected(self, rt):
        rt.cudaConfigureCall(1, 1)
        assert rt.cudaSetupArgument(1.0, 0, size=8).ok
        assert rt.cudaSetupArgument(2.0, 4, size=4) is cudaError.cudaErrorInvalidValue

    def test_kernel_stack_limit(self, rt):
        # The parameter stack is 256 bytes on CUDA 1.0.
        rt.cudaConfigureCall(1, 1)
        assert rt.cudaSetupArgument(0, 256, size=4) is cudaError.cudaErrorInvalidValue

    def test_invalid_configuration_rejected(self, rt):
        assert (
            rt.cudaConfigureCall(1, 1024)
            is cudaError.cudaErrorInvalidConfiguration
        )

    def test_launching_non_global_fails(self, rt):
        def plain(ctx):
            yield op(OpClass.IADD)

        rt.cudaConfigureCall(1, 1)
        assert rt.cudaLaunch(plain) is cudaError.cudaErrorInvalidValue

    def test_kernel_fault_becomes_launch_failure(self, rt):
        @global_
        def crashing(ctx):
            yield op(OpClass.IADD)
            raise RuntimeError("bad kernel")

        rt.cudaConfigureCall(1, 1)
        assert rt.cudaLaunch(crashing) is cudaError.cudaErrorLaunchFailure

    def test_launch_is_asynchronous(self, rt):
        # §2.2: "A kernel invocation does not block the host."
        arr = make_view(rt, np.float32, 32)
        rt.cudaConfigureCall(1, 32)
        rt.cudaSetupArgument(arr, 0, size=8)
        rt.cudaLaunch(double_kernel)
        tl = rt.device.timeline
        assert tl.device_busy_until > tl.host_time or (
            tl.device_busy_until == pytest.approx(tl.host_time)
        )

    def test_thread_synchronize(self, rt):
        rt.device.timeline.launch_kernel(0.01)
        assert rt.cudaThreadSynchronize().ok
        assert rt.device.timeline.host_time >= 0.01


class TestQualifiers:
    def test_global_cannot_be_called_directly(self):
        with pytest.raises(CudaQualifierError, match="__global__"):
            double_kernel(None, None)

    def test_device_fn_rejected_on_host(self):
        @device_fn
        def helper(x):
            return x + 1

        with pytest.raises(CudaQualifierError, match="__device__"):
            helper(1)

    def test_device_fn_usable_inside_kernel(self, rt):
        @device_fn
        def helper(x):
            return x + 1

        out = {}

        @global_
        def k(ctx):
            out["v"] = helper(41)
            yield op(OpClass.IADD)

        rt.cudaConfigureCall(1, 1)
        assert rt.cudaLaunch(k).ok
        assert out["v"] == 42

    def test_host_fn_rejected_in_kernel(self, rt):
        @host_fn
        def host_only():
            return 1

        @global_
        def k(ctx):
            host_only()
            yield op(OpClass.IADD)

        rt.cudaConfigureCall(1, 1)
        assert rt.cudaLaunch(k) is cudaError.cudaErrorLaunchFailure

    def test_host_fn_works_on_host(self):
        @host_fn
        def host_only():
            return 7

        assert host_only() == 7
