"""OpenGL interoperability (§3.2): register/map/write/unmap protocol."""

import numpy as np
import pytest

from repro.cuda import (
    CudaMachine,
    CudaRuntime,
    GLBufferObject,
    cudaError,
    global_,
)
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import op, st
from repro.simgpu.memory import DeviceArrayView


@pytest.fixture
def rt() -> CudaRuntime:
    return CudaRuntime(CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 20)]))


class TestProtocol:
    def test_register_map_unmap_cycle(self, rt):
        buf = GLBufferObject(name=1, nbytes=256)
        assert rt.cudaGLRegisterBufferObject(buf).ok
        err, ptr = rt.cudaGLMapBufferObject(buf)
        assert err.ok and ptr
        assert rt.cudaGLUnmapBufferObject(buf).ok
        assert rt.cudaGLUnregisterBufferObject(buf).ok

    def test_double_register_rejected(self, rt):
        buf = GLBufferObject(1, 64)
        rt.cudaGLRegisterBufferObject(buf)
        assert (
            rt.cudaGLRegisterBufferObject(buf) is cudaError.cudaErrorInvalidValue
        )

    def test_map_before_register_rejected(self, rt):
        buf = GLBufferObject(1, 64)
        err, ptr = rt.cudaGLMapBufferObject(buf)
        assert err is cudaError.cudaErrorInvalidValue and ptr is None

    def test_double_map_rejected(self, rt):
        buf = GLBufferObject(1, 64)
        rt.cudaGLRegisterBufferObject(buf)
        rt.cudaGLMapBufferObject(buf)
        err, _ = rt.cudaGLMapBufferObject(buf)
        assert err is cudaError.cudaErrorInvalidValue

    def test_unregister_while_mapped_rejected(self, rt):
        buf = GLBufferObject(1, 64)
        rt.cudaGLRegisterBufferObject(buf)
        rt.cudaGLMapBufferObject(buf)
        assert (
            rt.cudaGLUnregisterBufferObject(buf)
            is cudaError.cudaErrorInvalidValue
        )

    def test_unregister_frees_the_backing(self, rt):
        before = rt.device.memory.allocation_count
        buf = GLBufferObject(1, 4096)
        rt.cudaGLRegisterBufferObject(buf)
        assert rt.device.memory.allocation_count == before + 1
        rt.cudaGLUnregisterBufferObject(buf)
        assert rt.device.memory.allocation_count == before


class TestKernelWritesIntoGlBuffer:
    def test_renderer_sees_kernel_output_without_memcpy(self, rt):
        # The interop payoff: a kernel fills the mapped buffer; "GL"
        # (here: a direct view) reads it in place.
        buf = GLBufferObject(1, 32 * 4)
        rt.cudaGLRegisterBufferObject(buf)
        err, ptr = rt.cudaGLMapBufferObject(buf)
        view = DeviceArrayView(rt.device.memory, ptr, np.dtype(np.float32), 32)

        @global_
        def fill(ctx, out):
            i = ctx.global_thread_id
            yield st(out, i, float(i) * 2)

        rt.cudaConfigureCall(1, 32)
        rt.cudaSetupArgument(view, 0, size=8)
        assert rt.cudaLaunch(fill).ok
        rt.cudaGLUnmapBufferObject(buf)

        memcpys_before_render = rt.memcpy_count
        rendered = rt.device.memory.view(ptr, np.float32, 32)  # GL reads
        np.testing.assert_array_equal(rendered, np.arange(32) * 2.0)
        assert rt.memcpy_count == memcpys_before_render  # no transfer!


class TestInteropFrameModel:
    def test_interop_raises_fps_at_scale(self):
        # The serial schedule pays the blocking draw-matrix fetch on the
        # critical path, so keeping the matrices on the device saves the
        # whole transfer there.  (The double-buffered schedule already
        # hides the fetch on the copy stream, so interop's frame-period
        # advantage exists only without double buffering.)
        from repro.gpusteer.double_buffer import simulate_frames
        from repro.steer import DEFAULT_PARAMS

        n = 32768
        plain = simulate_frames(
            n, DEFAULT_PARAMS, double_buffered=False, gl_interop=False
        )
        interop = simulate_frames(
            n, DEFAULT_PARAMS, double_buffered=False, gl_interop=True
        )
        assert interop < plain  # shorter frame period
        # The saving is roughly the 64-byte-per-agent transfer.
        saved = plain - interop
        assert saved > 0.1e-3  # >0.1 ms at 32k agents

    def test_interop_gain_hidden_by_stream_overlap(self):
        # With double buffering on streams the fetch rides the copy
        # engine behind the render, so interop saves at most the map
        # overhead — the overlapped schedule obsoletes it.
        from repro.gpusteer.double_buffer import simulate_frames
        from repro.steer import DEFAULT_PARAMS

        n = 32768
        plain = simulate_frames(
            n, DEFAULT_PARAMS, double_buffered=True, gl_interop=False
        )
        interop = simulate_frames(
            n, DEFAULT_PARAMS, double_buffered=True, gl_interop=True
        )
        assert abs(plain - interop) < 0.1e-3

    def test_interop_gain_negligible_for_small_flocks(self):
        from repro.gpusteer.double_buffer import simulate_frames
        from repro.steer import DEFAULT_PARAMS

        n = 1024
        plain = simulate_frames(
            n, DEFAULT_PARAMS, double_buffered=True, gl_interop=False
        )
        interop = simulate_frames(
            n, DEFAULT_PARAMS, double_buffered=True, gl_interop=True
        )
        assert abs(plain - interop) / plain < 0.05
