"""Memory management API (§3.2.3): malloc/free/memcpy with error codes."""

import numpy as np
import pytest

from repro.cuda import CudaMachine, CudaRuntime, cudaError, cudaMemcpyKind
from repro.simgpu import scaled_arch
from repro.simgpu.memory import DevicePtr

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost
D2D = cudaMemcpyKind.cudaMemcpyDeviceToDevice
H2H = cudaMemcpyKind.cudaMemcpyHostToHost


@pytest.fixture
def rt() -> CudaRuntime:
    return CudaRuntime(CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)]))


class TestMallocFree:
    def test_malloc_returns_pointer(self, rt):
        err, ptr = rt.cudaMalloc(1024)
        assert err.ok and isinstance(ptr, DevicePtr)

    def test_malloc_failure_returns_error_code(self, rt):
        err, ptr = rt.cudaMalloc(1 << 30)
        assert err is cudaError.cudaErrorMemoryAllocation
        assert ptr is None

    def test_free_roundtrip(self, rt):
        _, ptr = rt.cudaMalloc(128)
        assert rt.cudaFree(ptr).ok

    def test_double_free_returns_error_code(self, rt):
        # This is the C-style behaviour CuPP replaces with exceptions.
        _, ptr = rt.cudaMalloc(128)
        rt.cudaFree(ptr)
        assert rt.cudaFree(ptr) is cudaError.cudaErrorInvalidDevicePointer


class TestMemcpy:
    def test_h2d_d2h_roundtrip(self, rt):
        data = np.arange(32, dtype=np.float32)
        _, ptr = rt.cudaMalloc(data.nbytes)
        assert rt.cudaMemcpy(ptr, data, data.nbytes, H2D).ok
        back = np.zeros_like(data)
        assert rt.cudaMemcpy(back, ptr, data.nbytes, D2H).ok
        np.testing.assert_array_equal(back, data)

    def test_d2d_copy(self, rt):
        data = np.arange(8, dtype=np.int32)
        _, a = rt.cudaMalloc(data.nbytes)
        _, b = rt.cudaMalloc(data.nbytes)
        rt.cudaMemcpy(a, data, data.nbytes, H2D)
        assert rt.cudaMemcpy(b, a, data.nbytes, D2D).ok
        back = np.zeros_like(data)
        rt.cudaMemcpy(back, b, data.nbytes, D2H)
        np.testing.assert_array_equal(back, data)

    def test_h2h_copy(self, rt):
        src = np.arange(4, dtype=np.float64)
        dst = np.zeros_like(src)
        assert rt.cudaMemcpy(dst, src, src.nbytes, H2H).ok
        np.testing.assert_array_equal(dst, src)

    def test_kind_mismatch_rejected(self, rt):
        # Passing a host array where the kind says device (and vice versa)
        data = np.zeros(4, dtype=np.float32)
        _, ptr = rt.cudaMalloc(16)
        assert (
            rt.cudaMemcpy(data, data, 16, H2D)
            is cudaError.cudaErrorInvalidMemcpyDirection
        )
        assert (
            rt.cudaMemcpy(ptr, ptr, 16, D2H)
            is cudaError.cudaErrorInvalidMemcpyDirection
        )

    def test_stale_pointer_rejected(self, rt):
        data = np.zeros(4, dtype=np.float32)
        _, ptr = rt.cudaMalloc(16)
        rt.cudaFree(ptr)
        assert (
            rt.cudaMemcpy(data, ptr, 16, D2H)
            is cudaError.cudaErrorInvalidDevicePointer
        )

    def test_d2d_copy_avoids_the_pcie_bus(self, rt):
        # Device-to-device copies run at device-memory bandwidth (64 GB/s
        # class), not PCIe (2.5 GB/s) — over an order of magnitude faster.
        nbytes = 1 << 20
        _, a = rt.cudaMalloc(nbytes)
        _, b = rt.cudaMalloc(nbytes)
        data = np.zeros(nbytes, np.uint8)

        t0 = rt.device.timeline.host_time
        rt.cudaMemcpy(a, data, nbytes, H2D)
        pcie_cost = rt.device.timeline.host_time - t0

        t0 = rt.device.timeline.host_time
        rt.cudaMemcpy(b, a, nbytes, D2D)
        d2d_cost = rt.device.timeline.host_time - t0

        assert d2d_cost * 5 < pcie_cost

    def test_memcpy_synchronizes_with_kernel(self, rt):
        # A memcpy issued while the device is busy blocks the host until
        # the kernel finishes (§2.2).
        rt.device.timeline.launch_kernel(0.05)
        data = np.zeros(4, dtype=np.float32)
        _, ptr = rt.cudaMalloc(16)
        before = rt.device.timeline.host_time
        rt.cudaMemcpy(ptr, data, 16, H2D)
        assert rt.device.timeline.host_time - before >= 0.05 - 1e-9
