"""``cudaStream_t``/``cudaEvent_t``: the asyncAPI-style overlap surface.

Covers the CUDA 1.x stream/event host API on the simulated runtime —
creation/destruction and invalid-handle handling, stream-ordered
``cudaMemcpyAsync`` and ``cudaLaunch``, event record/wait/elapsed, the
observability rows (``cuda.stream.*`` counters, ``async-h2d``/
``async-d2h``/``stream-wait`` ledger causes), fault injection on stream
ops, zero-byte copy semantics, and sim/native conformance (both
backends share the timeline, so copy schedules are bit-identical).
"""

import numpy as np
import pytest

from repro import obs
from repro.cuda import (
    CudaMachine,
    CudaRuntime,
    cudaError,
    cudaMemcpyKind,
    global_,
)
from repro.fault import FaultConfig, FaultInjector
from repro.simgpu import scaled_arch
from repro.simgpu.isa import st
from repro.simgpu.memory import DeviceArrayView

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost


def make_rt(backend: str = "sim") -> CudaRuntime:
    return CudaRuntime(
        CudaMachine(
            [scaled_arch("t", 2, memory_bytes=1 << 22)], backend=backend
        )
    )


@pytest.fixture
def rt() -> CudaRuntime:
    return make_rt()


@global_
def fill_double(ctx, out):
    i = ctx.global_thread_id
    yield st(out, i, float(i) * 2)


def launch_on(rt, stream, n=32):
    err, ptr = rt.cudaMalloc(n * 4)
    assert err.ok
    view = DeviceArrayView(rt.device.memory, ptr, np.dtype(np.float32), n)
    rt.cudaConfigureCall(1, n)
    rt.cudaSetupArgument(view, 0, size=8)
    return rt.cudaLaunch(fill_double, stream=stream), ptr


class TestLifecycle:
    def test_create_destroy_stream_and_event(self, rt):
        err, stream = rt.cudaStreamCreate()
        assert err.ok and not stream.destroyed
        err, event = rt.cudaEventCreate()
        assert err.ok and not event.recorded
        assert rt.cudaEventDestroy(event).ok
        assert rt.cudaStreamDestroy(stream).ok
        assert stream.destroyed and event.destroyed

    def test_destroyed_handles_are_invalid(self, rt):
        _, stream = rt.cudaStreamCreate()
        _, event = rt.cudaEventCreate()
        rt.cudaStreamDestroy(stream)
        rt.cudaEventDestroy(event)
        bad = cudaError.cudaErrorInvalidResourceHandle
        assert rt.cudaStreamDestroy(stream) is bad
        assert rt.cudaEventDestroy(event) is bad
        assert rt.cudaStreamSynchronize(stream) is bad
        assert rt.cudaEventSynchronize(event) is bad
        assert rt.cudaEventRecord(event) is bad
        assert rt.cudaStreamWaitEvent(stream, event) is bad

    def test_foreign_object_is_invalid(self, rt):
        assert (
            rt.cudaStreamSynchronize(object())
            is cudaError.cudaErrorInvalidResourceHandle
        )
        err = rt.cudaMemcpyAsync(
            np.zeros(4, np.float32), np.zeros(4, np.float32), 16, H2D, None
        )
        assert err is cudaError.cudaErrorInvalidResourceHandle

    def test_stream_destroy_drains_pending_work(self, rt):
        _, stream = rt.cudaStreamCreate()
        err, ptr = rt.cudaMalloc(1 << 12)
        assert err.ok
        rt.cudaMemcpyAsync(ptr, np.zeros(1 << 10, np.float32), 1 << 12, H2D, stream)
        before = rt.device.timeline.host_time
        assert rt.cudaStreamDestroy(stream).ok
        # The destroy synchronized: the host waited out the DMA.
        assert rt.device.timeline.host_time >= before
        assert rt.device.timeline.host_time >= stream.sim.ready_s

    def test_launch_on_invalid_stream_consumes_config(self, rt):
        _, stream = rt.cudaStreamCreate()
        rt.cudaStreamDestroy(stream)
        err, _ = launch_on(rt, stream)
        assert err is cudaError.cudaErrorInvalidResourceHandle
        # The 3-step launch dance was consumed: a bare launch now fails
        # on configuration, not on the stale stream.
        assert (
            rt.cudaLaunch(fill_double)
            is cudaError.cudaErrorInvalidConfiguration
        )


class TestAsyncMemcpy:
    def test_round_trip_payload(self, rt):
        _, stream = rt.cudaStreamCreate()
        src = np.arange(64, dtype=np.float32)
        err, ptr = rt.cudaMalloc(src.nbytes)
        assert err.ok
        assert rt.cudaMemcpyAsync(ptr, src, src.nbytes, H2D, stream).ok
        out = np.zeros_like(src)
        assert rt.cudaMemcpyAsync(out, ptr, src.nbytes, D2H, stream).ok
        assert rt.cudaStreamSynchronize(stream).ok
        np.testing.assert_array_equal(out, src)

    def test_submit_does_not_block_the_host(self, rt):
        _, stream = rt.cudaStreamCreate()
        _, ptr = rt.cudaMalloc(1 << 20)
        host_before = rt.device.timeline.host_time
        rt.cudaMemcpyAsync(ptr, np.zeros(1 << 18, np.float32), 1 << 20, H2D, stream)
        # Async submit: the host clock did not pay the transfer.
        assert rt.device.timeline.host_time == host_before
        assert stream.sim.ready_s > host_before
        rt.cudaStreamSynchronize(stream)
        assert rt.device.timeline.host_time == stream.sim.ready_s

    def test_wrong_direction_rejected(self, rt):
        _, stream = rt.cudaStreamCreate()
        _, ptr = rt.cudaMalloc(64)
        err = rt.cudaMemcpyAsync(np.zeros(16, np.float32), ptr, 64, H2D, stream)
        assert err is cudaError.cudaErrorInvalidMemcpyDirection

    def test_counters_and_ledger_rows(self, rt):
        obs.reset()
        _, stream = rt.cudaStreamCreate()
        src = np.arange(16, dtype=np.float32)
        _, ptr = rt.cudaMalloc(src.nbytes)
        rt.cudaMemcpyAsync(ptr, src, src.nbytes, H2D, stream)
        rt.cudaMemcpyAsync(np.zeros_like(src), ptr, src.nbytes, D2H, stream)
        led = obs.get_ledger().snapshot()
        assert led["bytes_by_cause"]["async-h2d"] == src.nbytes
        assert led["bytes_by_cause"]["async-d2h"] == src.nbytes
        assert led["moved_bytes_by_direction"]["h2d"] == src.nbytes
        assert led["moved_bytes_by_direction"]["d2h"] == src.nbytes
        assert (
            obs.counter(
                "cuda.stream.memcpy.count", kind=H2D.name
            ).value
            == 1
        )
        assert (
            obs.counter("cuda.stream.memcpy.bytes", kind=D2H.name).value
            == src.nbytes
        )

    def test_ecc_fault_burns_bus_time_and_poisons(self, rt):
        injector = FaultInjector(
            FaultConfig(script={"transfer": ["transfer-corrupt"]})
        )
        rt.device.fault_injector = injector
        _, stream = rt.cudaStreamCreate()
        _, ptr = rt.cudaMalloc(64)
        ready_before = stream.sim.ready_s
        err = rt.cudaMemcpyAsync(ptr, np.zeros(16, np.float32), 64, H2D, stream)
        assert err is cudaError.cudaErrorECCUncorrectable
        # The DMA still occupied the engine for the full transfer.
        assert stream.sim.ready_s > ready_before


class TestZeroByteCopies:
    """Satellite: 0-byte copies are driver no-ops that still order."""

    def test_blocking_zero_copy_is_pure_sync(self, rt):
        _, ptr = rt.cudaMalloc(64)
        tl = rt.device.timeline
        tl.launch_kernel(1e-3)
        host_before = tl.host_time
        assert rt.cudaMemcpy(ptr, np.zeros(0, np.uint8), 0, H2D).ok
        # It synchronized (waited out the kernel)...
        assert tl.host_time >= 1e-3
        assert tl.host_time > host_before
        # ...but charged no per-call overhead or bus time.
        assert tl.host_time == tl.device_busy_until
        assert tl.pcie.transfer_time(0) == 0.0

    def test_async_zero_copy_orders_but_costs_nothing(self, rt):
        _, stream = rt.cudaStreamCreate()
        _, ptr = rt.cudaMalloc(64)
        err, _ = launch_on(rt, stream)
        assert err.ok
        ready_before = stream.sim.ready_s
        assert rt.cudaMemcpyAsync(ptr, np.zeros(0, np.uint8), 0, H2D, stream).ok
        # Ordered after the kernel, zero engine time.
        assert stream.sim.ready_s == ready_before


class TestStreamOrderedLaunch:
    def test_stream_launch_runs_and_counts(self, rt):
        obs.reset()
        _, stream = rt.cudaStreamCreate()
        err, ptr = launch_on(rt, stream)
        assert err.ok
        rt.cudaStreamSynchronize(stream)
        out = rt.device.memory.view(ptr, np.float32, 32)
        np.testing.assert_array_equal(out, np.arange(32) * 2.0)
        assert obs.counter("cuda.stream.launches").value == 1

    def test_kernels_serialize_within_one_stream(self, rt):
        _, stream = rt.cudaStreamCreate()
        err, _ = launch_on(rt, stream)
        assert err.ok
        first_end = stream.sim.ready_s
        err, _ = launch_on(rt, stream)
        assert err.ok
        assert stream.sim.ready_s > first_end

    def test_copy_overlaps_compute_on_another_stream(self, rt):
        _, compute = rt.cudaStreamCreate()
        _, copy = rt.cudaStreamCreate()
        tl = rt.device.timeline
        # A long kernel on the compute stream...
        op_k = tl.stream_launch(compute.sim, 5e-3)
        # ...and a DMA on the copy stream, submitted after: they overlap
        # because they occupy different tracks.
        op_c = tl.stream_memcpy(copy.sim, 1 << 20)
        assert op_c.start_s < op_k.end_s
        assert op_k.track.startswith("compute") and op_c.track == "copy"

    def test_injected_hang_wedges_only_that_stream(self, rt):
        injector = FaultInjector(FaultConfig(script={"launch": ["hang"]}))
        rt.device.fault_injector = injector
        _, wedged = rt.cudaStreamCreate()
        _, healthy = rt.cudaStreamCreate()
        err, _ = launch_on(rt, wedged)
        assert err is cudaError.cudaErrorLaunchFailure
        assert wedged.sim.ready_s >= injector.config.hang_latency_s
        # The second stream's front is not dragged by the wedge (only
        # shared tracks could couple them; a single kernel leaves one).
        assert healthy.sim.ready_s == 0.0


class TestEvents:
    def test_record_wait_orders_across_streams(self, rt):
        _, producer = rt.cudaStreamCreate()
        _, consumer = rt.cudaStreamCreate()
        _, event = rt.cudaEventCreate()
        err, _ = launch_on(rt, producer)
        assert err.ok
        assert rt.cudaEventRecord(event, producer).ok
        assert event.recorded
        assert rt.cudaStreamWaitEvent(consumer, event).ok
        op = rt.device.timeline.stream_launch(consumer.sim, 1e-4)
        # The consumer's kernel starts no earlier than the producer's
        # completion: max-of-predecessor-completions.
        assert op.start_s >= event.sim.timestamp_s

    def test_wait_on_unrecorded_event_is_noop(self, rt):
        _, stream = rt.cudaStreamCreate()
        _, event = rt.cudaEventCreate()
        ready = stream.sim.ready_s
        assert rt.cudaStreamWaitEvent(stream, event).ok
        assert stream.sim.ready_s == ready

    def test_event_synchronize_blocks_host(self, rt):
        _, stream = rt.cudaStreamCreate()
        _, event = rt.cudaEventCreate()
        err, _ = launch_on(rt, stream)
        assert err.ok
        rt.cudaEventRecord(event, stream)
        assert rt.cudaEventSynchronize(event).ok
        assert rt.device.timeline.host_time >= event.sim.timestamp_s

    def test_elapsed_time_measures_the_span(self, rt):
        _, stream = rt.cudaStreamCreate()
        _, start = rt.cudaEventCreate()
        _, end = rt.cudaEventCreate()
        rt.cudaEventRecord(start, stream)
        tl = rt.device.timeline
        tl.stream_launch(stream.sim, 2e-3)
        rt.cudaEventRecord(end, stream)
        err, ms = rt.cudaEventElapsedTime(start, end)
        assert err.ok
        # Kernel time plus the host-side launch overhead between records.
        assert ms == pytest.approx((2e-3 + tl.launch_overhead_s) * 1e3)

    def test_elapsed_time_needs_recorded_events(self, rt):
        _, start = rt.cudaEventCreate()
        _, end = rt.cudaEventCreate()
        err, _ = rt.cudaEventElapsedTime(start, end)
        assert err is cudaError.cudaErrorInvalidValue

    def test_stream_wait_lands_in_the_ledger(self, rt):
        obs.reset()
        _, a = rt.cudaStreamCreate()
        _, b = rt.cudaStreamCreate()
        _, event = rt.cudaEventCreate()
        rt.cudaEventRecord(event, a)
        rt.cudaStreamWaitEvent(b, event)
        led = obs.get_ledger().snapshot()
        assert led["count_by_cause"]["stream-wait"] == 1
        assert obs.counter("cuda.stream.waits").value == 1


class TestSimNativeConformance:
    """Both backends share the timeline model, so stream programs agree:
    payloads bit-identical, copy schedules float-identical."""

    @staticmethod
    def _stream_program(rt):
        _, stream_a = rt.cudaStreamCreate()
        _, stream_b = rt.cudaStreamCreate()
        _, event = rt.cudaEventCreate()
        src = np.arange(256, dtype=np.float32)
        err, ptr = rt.cudaMalloc(src.nbytes)
        assert err.ok
        assert rt.cudaMemcpyAsync(ptr, src, src.nbytes, H2D, stream_a).ok
        assert rt.cudaEventRecord(event, stream_a).ok
        assert rt.cudaStreamWaitEvent(stream_b, event).ok
        out = np.zeros_like(src)
        assert rt.cudaMemcpyAsync(out, ptr, src.nbytes, D2H, stream_b).ok
        # Zero-byte copy: same semantics on both backends.
        assert rt.cudaMemcpyAsync(ptr, np.zeros(0, np.uint8), 0, H2D, stream_a).ok
        assert rt.cudaStreamSynchronize(stream_a).ok
        assert rt.cudaStreamSynchronize(stream_b).ok
        tl = rt.device.timeline
        return out, (
            tl.host_time,
            stream_a.sim.ready_s,
            stream_b.sim.ready_s,
            event.sim.timestamp_s,
            tl.device_busy_until,
        )

    def test_copy_schedule_and_payload_agree(self):
        sim_out, sim_clocks = self._stream_program(make_rt("sim"))
        nat_out, nat_clocks = self._stream_program(make_rt("native"))
        np.testing.assert_array_equal(sim_out, nat_out)
        assert sim_clocks == nat_clocks  # bit-identical virtual schedule

    def test_kernel_payloads_agree_across_backends(self):
        results = []
        for backend in ("sim", "native"):
            rt = make_rt(backend)
            _, stream = rt.cudaStreamCreate()
            err, ptr = launch_on(rt, stream)
            assert err.ok
            rt.cudaStreamSynchronize(stream)
            results.append(np.asarray(rt.device.memory.view(ptr, np.float32, 32)).copy())
        np.testing.assert_array_equal(results[0], results[1])
