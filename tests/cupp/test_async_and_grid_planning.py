"""Asynchronous launch semantics (§4.3.1) and 2D grid planning (§2.2)."""

import numpy as np
import pytest

from repro.cuda import CudaMachine, global_
from repro.cupp import (
    ConstRef,
    CuppLaunchError,
    Device,
    DeviceVector,
    Kernel,
    Vector,
    plan_grid,
)
from repro.simgpu import Dim3, OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st


@pytest.fixture
def dev() -> Device:
    return Device(machine=CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)]))


class TestAsynchronousSemantics:
    def test_launch_charges_host_only_the_overhead(self, dev):
        # §4.3.1: "a kernel invocation does not block the host"; the host
        # copy's destructor runs right after the launch, deliberately NOT
        # synchronizing with kernel completion.
        @global_
        def burn(ctx, v: ConstRef[DeviceVector]):
            for j in range(len(v)):
                _ = yield ld(v.view, j)

        v = Vector(np.ones(64, np.float32))
        tl = dev.sim.timeline
        Kernel(burn, 1, 32)(dev, v)
        # The modelled device completion lies in the host's future.
        assert tl.device_busy_until > tl.host_time

    def test_const_call_never_waits_for_the_device(self, dev):
        # Two back-to-back const launches: the second configures while
        # the first still runs; only a host *read* forces the wait.
        @global_
        def burn(ctx, v: ConstRef[DeviceVector]):
            for j in range(len(v)):
                _ = yield ld(v.view, j)

        v = Vector(np.ones(64, np.float32))
        k = Kernel(burn, 1, 32)
        k(dev, v)
        host_before = dev.sim.timeline.host_time
        k(dev, v)  # no transfers needed: device data still valid
        host_after = dev.sim.timeline.host_time
        # The host only paid launch overhead, not kernel time.
        assert host_after - host_before < 1e-3

    def test_mutable_ref_writeback_synchronizes(self, dev):
        # §4.3.2 step 4 reads global memory, which implicitly synchronizes
        # with the running kernel (§2.2).
        @global_
        def touch(ctx, v):
            i = ctx.global_thread_id
            x = yield ld(v.view, i)
            yield st(v.view, i, x + 1)

        from repro.cupp import Ref

        @global_
        def touch_ref(ctx, v: Ref[DeviceVector]):
            i = ctx.global_thread_id
            x = yield ld(v.view, i)
            yield st(v.view, i, x + 1)

        v = Vector(np.zeros(32, np.float32))
        Kernel(touch_ref, 1, 32)(dev, v)
        _ = v[0]  # host read -> download -> sync
        tl = dev.sim.timeline
        assert tl.host_time >= tl.device_busy_until - 1e-12


class TestGridPlanning:
    def test_small_launches_stay_1d(self):
        assert plan_grid(4096, 128) == Dim3(32, 1, 1)

    def test_exact_fit(self):
        assert plan_grid(65535 * 64, 64) == Dim3(65535, 1, 1)

    def test_past_65535_blocks_goes_2d(self):
        # §2.2: "When requiring more than 2^16 thread blocks,
        # 2-dimensional block-indexes have to be used."
        g = plan_grid(65536 * 64, 64)
        assert g.y > 1
        assert g.x <= 65535 and g.y <= 65535
        assert g.x * g.y >= 65536

    def test_planned_grid_is_tight(self):
        g = plan_grid(100_000 * 32, 32)
        blocks_needed = 100_000
        assert g.x * g.y >= blocks_needed
        # No more than one extra row of waste.
        assert g.x * g.y < blocks_needed + g.x

    def test_planned_grids_pass_device_validation(self, dev):
        for total in (1, 4096, 65536 * 64, 10_000_000):
            g = plan_grid(total, 64)
            dev.sim.validate_launch(g, Dim3(64, 1, 1))

    def test_beyond_2d_capacity_rejected(self):
        with pytest.raises(CuppLaunchError):
            plan_grid(65536 * 65536 * 2, 1)

    def test_nonpositive_rejected(self):
        with pytest.raises(CuppLaunchError):
            plan_grid(0, 32)
        with pytest.raises(CuppLaunchError):
            plan_grid(32, 0)

    def test_2d_grid_executes_correctly(self, dev):
        # A moderate 2D grid through the whole stack: every block writes
        # its flattened id.
        from repro.cupp import Ref

        @global_
        def mark(ctx, out: Ref[DeviceVector]):
            bid = ctx.block_idx.x + ctx.block_idx.y * ctx.grid_dim.x
            yield st(out.view, bid, float(bid))

        out = Vector(np.full(48, -1.0, np.float32))
        Kernel(mark, Dim3(8, 6), 1)(dev, out)
        np.testing.assert_array_equal(
            out.to_numpy(), np.arange(48, dtype=np.float32)
        )
