"""``cupp.containers`` — FlatMap/HashGrid invariants + the CuPP protocol.

Three layers, mirroring the subsystem's design:

* hypothesis property tests for the **host-side** structures: the
  FlatMap behaves like a ``dict``, the HashGrid never loses or
  duplicates an agent across rebuilds, and the 27-cell candidate set is
  a superset of every brute-force in-radius neighborhood;
* the **CuPP protocol**: first ``transform()`` uploads (``grid-build``
  ledger bytes, ``cupp.containers.uploads``), repeats are lazy hits,
  rebuilds invalidate, size changes realloc, and ``dirty()`` refuses —
  containers are const on the device (paper ch. 7);
* the **device twins** round-trip their pack()/unpack() kernel-argument
  encoding and expose the same arrays the host built.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.cuda import CudaMachine
from repro.cupp import CuppUsageError, Device
from repro.cupp.containers import (
    CELL_KEY_BITS,
    DeviceFlatMap,
    DeviceHashGrid,
    EMPTY_KEY,
    FlatMap,
    HashGrid,
    pack_cell_key,
)
from repro.cupp.containers.flatmap import NOT_FOUND
from repro.cupp.containers.hashgrid import _cell_keys, axis_cell
from repro.simgpu import scaled_arch


@pytest.fixture
def dev() -> Device:
    machine = CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)])
    return Device(machine=machine)


@pytest.fixture
def fresh_obs():
    obs.reset()
    ledger = obs.get_ledger()
    prev = ledger.keep_entries
    ledger.keep_entries = True
    yield
    ledger.keep_entries = prev
    obs.reset()


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
coords = st.floats(
    min_value=-1e4,
    max_value=1e4,
    allow_nan=False,
    allow_infinity=False,
    width=32,
)

positions_arrays = st.lists(
    st.tuples(coords, coords, coords), min_size=1, max_size=48
).map(lambda rows: np.array(rows, dtype=np.float32))

map_keys = st.integers(min_value=0, max_value=EMPTY_KEY - 1)
map_vals = st.integers(min_value=-(2**31), max_value=2**31 - 1)
map_models = st.dictionaries(map_keys, map_vals, max_size=48)

HYP = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


# ----------------------------------------------------------------------
# FlatMap vs dict (the std::unordered_map contract)
# ----------------------------------------------------------------------
class TestFlatMapModel:
    @HYP
    @given(model=map_models)
    def test_matches_dict_semantics(self, model):
        fmap = FlatMap(model)
        assert len(fmap) == len(model)
        assert fmap.empty() == (not model)
        for key, value in model.items():
            assert key in fmap
            assert fmap[key] == np.int32(value)
            assert fmap.get(key) == np.int32(value)
        assert dict(fmap.items()) == {
            k: int(np.int32(v)) for k, v in model.items()
        }

    @HYP
    @given(model=map_models, probe=map_keys)
    def test_missing_keys_miss(self, model, probe):
        fmap = FlatMap(model)
        if probe not in model:
            assert probe not in fmap
            assert fmap.get(probe) == NOT_FOUND
            assert fmap.get(probe, default=-7) == -7
            with pytest.raises(KeyError):
                fmap[probe]

    @HYP
    @given(model=map_models)
    def test_erase_matches_dict_del(self, model):
        fmap = FlatMap(model)
        for key in list(model):
            assert fmap.erase(key) is True
            del model[key]
            assert key not in fmap
            assert dict(fmap.items()) == {
                k: int(np.int32(v)) for k, v in model.items()
            }
        assert fmap.erase(12345) is False

    @HYP
    @given(model=map_models)
    def test_assign_bulk_build_round_trips(self, model):
        keys = np.array(sorted(model), dtype=np.uint64)
        vals = np.array([model[int(k)] for k in keys], dtype=np.int32)
        fmap = FlatMap()
        fmap.assign(keys, vals)
        assert dict(fmap.items()) == {
            int(k): int(v) for k, v in zip(keys, vals)
        }

    @HYP
    @given(model=map_models)
    def test_capacity_is_pow2_with_load_factor_half(self, model):
        fmap = FlatMap(model)
        assert fmap.capacity & (fmap.capacity - 1) == 0
        assert fmap.capacity >= max(8, 2 * len(fmap))

    def test_key_range_enforced(self):
        fmap = FlatMap()
        with pytest.raises(CuppUsageError, match="sentinel"):
            fmap[EMPTY_KEY] = 1
        with pytest.raises(CuppUsageError, match="sentinel"):
            fmap[-1] = 1
        with pytest.raises(CuppUsageError, match="shape mismatch"):
            fmap.assign(np.arange(3, dtype=np.uint64), np.arange(2))

    def test_clear_empties(self):
        fmap = FlatMap({1: 2, 3: 4})
        fmap.clear()
        assert len(fmap) == 0
        assert 1 not in fmap


# ----------------------------------------------------------------------
# HashGrid invariants (satellite: insert/query/rebuild round-trip)
# ----------------------------------------------------------------------
def _all_members(grid: HashGrid) -> np.ndarray:
    """Concatenate every occupied cell's segment through the public API."""
    return np.concatenate(
        [grid.members_of(int(key)) for key in grid._keys]
        or [np.empty(0, np.int32)]
    )


class TestHashGridInvariants:
    @HYP
    @given(positions=positions_arrays)
    def test_no_lost_or_duplicated_agents(self, positions):
        grid = HashGrid(cell_edge=9.0)
        grid.build(positions)
        n = positions.shape[0]
        assert grid.agent_count == n
        members = _all_members(grid)
        assert np.array_equal(np.sort(members), np.arange(n))

    @HYP
    @given(positions=positions_arrays, positions2=positions_arrays)
    def test_rebuild_round_trips(self, positions, positions2):
        grid = HashGrid(cell_edge=9.0)
        grid.build(positions)
        grid.build(positions2)  # rebuild with a different population
        n = positions2.shape[0]
        assert np.array_equal(np.sort(_all_members(grid)), np.arange(n))
        # Segments partition the agents: CSR offsets are monotone and
        # cover exactly n members.
        starts = grid._starts
        assert starts[0] == 0 and starts[-1] == n
        assert np.all(np.diff(starts) > 0)  # only occupied cells exist
        assert grid.cell_count == starts.size - 1
        assert len(grid.cells) == grid.cell_count

    @HYP
    @given(positions=positions_arrays, query=st.integers(min_value=0))
    def test_candidates_cover_every_in_radius_neighbor(
        self, positions, query
    ):
        radius = 9.0
        grid = HashGrid(cell_edge=radius)
        grid.build(positions)
        i = query % positions.shape[0]
        point = positions[i]
        d2 = np.sum(
            (positions.astype(np.float64) - point.astype(np.float64)) ** 2,
            axis=1,
        )
        in_radius = set(np.nonzero(d2 < radius * radius)[0].tolist())
        assert in_radius <= set(grid.candidates(point).tolist())

    @HYP
    @given(positions=positions_arrays)
    def test_vectorized_keys_match_scalar_twin(self, positions):
        edge = 9.0
        keys = _cell_keys(positions, edge)
        for row, key in zip(positions, keys):
            expected = pack_cell_key(
                axis_cell(row[0], edge),
                axis_cell(row[1], edge),
                axis_cell(row[2], edge),
            )
            assert int(key) == expected

    def test_members_of_missing_cell_is_empty(self):
        grid = HashGrid(cell_edge=1.0)
        grid.build(np.zeros((4, 3), np.float32))
        far = pack_cell_key(0, 0, 0)
        assert grid.members_of(far).size == 0

    def test_requires_build_before_queries(self):
        grid = HashGrid(cell_edge=1.0)
        with pytest.raises(CuppUsageError, match="build"):
            grid.candidates(np.zeros(3))

    def test_cell_edge_must_be_positive(self):
        with pytest.raises(CuppUsageError, match="positive"):
            HashGrid(cell_edge=0.0)

    def test_keys_fit_63_bits(self):
        top = pack_cell_key(
            (1 << CELL_KEY_BITS) - 1,
            (1 << CELL_KEY_BITS) - 1,
            (1 << CELL_KEY_BITS) - 1,
        )
        assert top < EMPTY_KEY  # the empty sentinel is unreachable


# ----------------------------------------------------------------------
# the CuPP protocol: lazy residency, dirty tracking, ledger causes
# ----------------------------------------------------------------------
def _ledger_rows(cause: str):
    return [e for e in obs.get_ledger().entries if e.cause == cause]


class TestCuppProtocol:
    def _grid(self, n=16, seed=3) -> HashGrid:
        rng = np.random.default_rng(seed)
        grid = HashGrid(cell_edge=2.0)
        grid.build(rng.uniform(-8, 8, (n, 3)).astype(np.float32))
        return grid

    def test_first_transform_uploads_with_grid_build_cause(
        self, dev, fresh_obs
    ):
        grid = self._grid()
        assert obs.counter("cupp.containers.builds").value == 1
        twin = grid.transform(dev)
        assert isinstance(twin, DeviceHashGrid)
        assert obs.counter("cupp.containers.uploads").value == 1
        assert obs.counter("cupp.containers.queries").value == 1
        builds = _ledger_rows("grid-build")
        assert builds and all(
            e.direction == "h2d" and e.moved for e in builds
        )
        # members + starts + directory keys/vals = the full footprint.
        assert sum(e.nbytes for e in builds) == grid.device_nbytes

    def test_repeat_transform_is_a_lazy_hit(self, dev, fresh_obs):
        grid = self._grid()
        grid.transform(dev)
        uploaded = sum(e.nbytes for e in _ledger_rows("grid-build"))
        grid.transform(dev)
        assert obs.counter("cupp.containers.lazy_hits").value == 1
        assert obs.counter("cupp.containers.uploads").value == 1
        # No new bus traffic — the device copy was reused.
        assert sum(e.nbytes for e in _ledger_rows("grid-build")) == uploaded

    def test_every_consumption_records_a_grid_query(self, dev, fresh_obs):
        grid = self._grid()
        grid.transform(dev)
        grid.transform(dev)
        queries = _ledger_rows("grid-query")
        assert len(queries) == 2
        for e in queries:
            assert e.direction == "d2d"
            assert not e.moved  # on-device bytes, not bus traffic
            assert e.nbytes == grid.device_nbytes
            assert e.label == "hashgrid"

    def test_rebuild_invalidates_device_copy(self, dev, fresh_obs):
        grid = self._grid()
        grid.transform(dev)
        rng = np.random.default_rng(4)
        grid.build(rng.uniform(-8, 8, (16, 3)).astype(np.float32))
        grid.transform(dev)
        assert obs.counter("cupp.containers.uploads").value == 2
        assert obs.counter("cupp.containers.lazy_hits").value == 0

    def test_population_change_reallocates(self, dev, fresh_obs):
        grid = self._grid(n=16)
        grid.transform(dev)
        rng = np.random.default_rng(5)
        grid.build(rng.uniform(-8, 8, (32, 3)).astype(np.float32))
        grid.transform(dev)
        assert obs.counter("cupp.containers.reallocs").value == 1

    def test_dirty_refuses_const_containers(self, dev, fresh_obs):
        grid = self._grid()
        ref = grid.get_device_reference(dev)
        with pytest.raises(CuppUsageError, match="ConstRef"):
            grid.dirty(ref)
        fmap = FlatMap({1: 2})
        fref = fmap.get_device_reference(dev)
        with pytest.raises(CuppUsageError, match="ConstRef"):
            fmap.dirty(fref)

    def test_flatmap_protocol_counters_and_label(self, dev, fresh_obs):
        fmap = FlatMap({i: i * 10 for i in range(9)})
        fmap.transform(dev)
        fmap.transform(dev)
        assert obs.counter("cupp.containers.uploads").value == 1
        assert obs.counter("cupp.containers.lazy_hits").value == 1
        queries = _ledger_rows("grid-query")
        assert [e.label for e in queries] == ["flatmap", "flatmap"]
        assert all(e.nbytes == fmap.device_nbytes for e in queries)
        # Host mutation dirties the device copy.
        fmap[99] = 1
        fmap.transform(dev)
        assert obs.counter("cupp.containers.uploads").value == 2

    def test_second_device_is_rejected(self, dev, fresh_obs):
        grid = self._grid()
        grid.transform(dev)
        other = Device(
            machine=CudaMachine([scaled_arch("u", 2, memory_bytes=1 << 22)])
        )
        with pytest.raises(CuppUsageError, match="different device"):
            grid.transform(other)


# ----------------------------------------------------------------------
# device twins: uploaded bytes + kernel-argument encoding
# ----------------------------------------------------------------------
class TestDeviceTwins:
    def test_uploaded_arrays_match_host_build(self, dev, fresh_obs):
        rng = np.random.default_rng(6)
        pos = rng.uniform(-8, 8, (24, 3)).astype(np.float32)
        grid = HashGrid(cell_edge=2.0)
        grid.build(pos)
        twin = grid.transform(dev)
        assert np.array_equal(twin.members._raw(), grid._members)
        assert np.array_equal(twin.starts._raw(), grid._starts)
        assert np.array_equal(twin.cells.keys._raw(), grid.cells._keys)
        assert np.array_equal(twin.cells.vals._raw(), grid.cells._vals)
        assert twin.cell_edge == grid.cell_edge
        assert twin.nbytes == grid.device_nbytes

    def test_hashgrid_pack_unpack_round_trip(self, dev, fresh_obs):
        grid = self_grid = HashGrid(cell_edge=3.0)
        self_grid.build(np.eye(3, dtype=np.float32) * 5)
        twin = grid.transform(dev)
        clone = DeviceHashGrid.unpack(twin.pack(), dev)
        assert clone.cell_edge == twin.cell_edge
        assert np.array_equal(clone.members._raw(), twin.members._raw())
        assert np.array_equal(clone.starts._raw(), twin.starts._raw())
        assert np.array_equal(clone.cells.keys._raw(), twin.cells.keys._raw())

    def test_flatmap_pack_unpack_round_trip(self, dev, fresh_obs):
        fmap = FlatMap({5: 50, 6: 60})
        twin = fmap.transform(dev)
        clone = DeviceFlatMap.unpack(twin.pack(), dev)
        assert clone.capacity == twin.capacity == fmap.capacity
        assert np.array_equal(clone.keys._raw(), twin.keys._raw())
        assert np.array_equal(clone.vals._raw(), twin.vals._raw())
