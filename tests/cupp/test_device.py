"""cupp.Device: explicit handles, property queries, RAII cleanup (§4.1)."""

import pytest

from repro.cuda import CudaMachine, cudaDeviceProp
from repro.cupp import CuppInvalidDevice, CuppMemoryError, CuppUsageError, Device
from repro.simgpu import scaled_arch


@pytest.fixture
def machine() -> CudaMachine:
    return CudaMachine(
        [
            scaled_arch("alpha", 4, memory_bytes=1 << 22),
            scaled_arch("beta", 16, memory_bytes=1 << 24),
        ]
    )


class TestConstruction:
    def test_default_device(self):
        # Listing 4.1: "creates a default device".
        dev = Device()
        assert dev.multiprocessors == 12
        dev.close()

    def test_device_by_index(self, machine):
        dev = Device(index=1, machine=machine)
        assert dev.name == "beta"

    def test_device_by_properties(self, machine):
        # "The creation of a device handle can be done by specifying
        # properties (similar to the original CUDA concept)".
        dev = Device(
            properties=cudaDeviceProp(totalGlobalMem=1 << 23), machine=machine
        )
        assert dev.name == "beta"

    def test_unsatisfiable_properties_raise(self, machine):
        with pytest.raises(CuppInvalidDevice):
            Device(
                properties=cudaDeviceProp(multiProcessorCount=99),
                machine=machine,
            )

    def test_index_and_properties_are_exclusive(self, machine):
        with pytest.raises(CuppUsageError):
            Device(properties=cudaDeviceProp(), index=0, machine=machine)


class TestQueries:
    def test_queryable_information(self, machine):
        # §4.1: "The device handle can be queried to get information about
        # the device, e.g. supported functionality or total amount of
        # memory."
        dev = Device(index=0, machine=machine)
        assert dev.total_memory == 1 << 22
        assert dev.supports_atomics is False
        prop = dev.properties()
        assert prop.multiProcessorCount == 4

    def test_free_memory_tracks_allocations(self, machine):
        dev = Device(index=0, machine=machine)
        before = dev.free_memory
        dev.alloc(4096)
        assert dev.free_memory == before - 4096


class TestMemoryApi:
    def test_alloc_raises_instead_of_error_code(self, machine):
        # §4.2: "exceptions are thrown when an error occurs instead of
        # returning an error code".
        dev = Device(index=0, machine=machine)
        with pytest.raises(CuppMemoryError):
            dev.alloc(1 << 30)

    def test_upload_download_roundtrip(self, machine):
        import numpy as np

        dev = Device(index=0, machine=machine)
        ptr = dev.alloc(64)
        data = np.arange(16, dtype=np.float32)
        dev.upload(ptr, data)
        back = dev.download(ptr, 64, np.float32)
        np.testing.assert_array_equal(back, data)

    def test_free_invalid_pointer_raises(self, machine):
        dev = Device(index=0, machine=machine)
        ptr = dev.alloc(64)
        dev.free(ptr)
        with pytest.raises(CuppMemoryError):
            dev.free(ptr)

    def test_raw_double_free_raises_invalid_free(self, machine):
        # Pool-less path: the driver's invalid-pointer code must surface
        # as the richer CuppInvalidFree, naming pointer and device.
        from repro.cupp import CuppInvalidFree

        dev = Device(index=0, machine=machine)
        assert dev.pool is None
        ptr = dev.alloc(64)
        dev.free(ptr)
        with pytest.raises(CuppInvalidFree) as exc:
            dev.free(ptr)
        assert exc.value.addr == ptr.addr
        assert exc.value.device_index == 0

    def test_raw_foreign_pointer_raises_invalid_free(self, machine):
        from repro.cupp import CuppInvalidFree
        from repro.simgpu.memory import DevicePtr

        dev = Device(index=0, machine=machine)
        dev.alloc(64)
        with pytest.raises(CuppInvalidFree, match="double free or foreign"):
            dev.free(DevicePtr(0xDEAD000))


class TestDisablePool:
    def test_disable_with_live_allocation_refuses(self, machine):
        dev = Device(index=0, machine=machine)
        dev.enable_pool()
        ptr = dev.alloc(4096)
        with pytest.raises(CuppUsageError, match="live"):
            dev.disable_pool()
        # The refusal left the pool attached and the pointer valid.
        assert dev.pool is not None
        dev.free(ptr)
        dev.disable_pool()
        assert dev.pool is None

    def test_disable_without_pool_is_a_no_op(self, machine):
        dev = Device(index=0, machine=machine)
        dev.disable_pool()
        assert dev.pool is None


class TestLifetime:
    def test_close_frees_all_memory(self, machine):
        # §4.1: "When the device handle is destroyed, all memory allocated
        # on this device is freed as well."
        dev = Device(index=0, machine=machine)
        for _ in range(4):
            dev.alloc(1024)
        sim = dev.runtime.device
        assert sim.memory.allocation_count == 4
        dev.close()
        assert sim.memory.allocation_count == 0

    def test_context_manager(self, machine):
        with Device(index=0, machine=machine) as dev:
            dev.alloc(128)
        with pytest.raises(CuppUsageError):
            dev.alloc(128)

    def test_close_is_idempotent(self, machine):
        dev = Device(index=0, machine=machine)
        dev.close()
        dev.close()

    def test_use_after_close_raises(self, machine):
        dev = Device(index=0, machine=machine)
        dev.close()
        with pytest.raises(CuppUsageError):
            _ = dev.total_memory
