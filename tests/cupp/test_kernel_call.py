"""cupp.Kernel: the C++-style kernel call (§4.3) including the paper's
listing 4.2/4.3 example, call semantics, and const-ref elision."""

import numpy as np
import pytest

from repro.cuda import CudaMachine, global_
from repro.cupp import (
    Boxed,
    ConstRef,
    CuppLaunchError,
    CuppTraitError,
    Device,
    Kernel,
    Ref,
)
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.dims import Dim3
from repro.simgpu.isa import op


@pytest.fixture
def dev() -> Device:
    return Device(machine=CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)]))


# --- The paper's running example (listings 4.2 / 4.3) -------------------
@global_
def half_kernel(ctx, i: int, j: Ref[int]):
    """__global__ void kernel(int i, int& j) { j = i/2; }"""
    yield op(OpClass.IADD)
    j.value = i // 2


class TestListing43:
    def test_j_equals_5(self, dev):
        # f(device_hdl, 10, j); // j == 5
        f = Kernel(half_kernel, grid_dim=Dim3(1, 1), block_dim=Dim3(1, 1))
        j = Boxed(0)
        f(dev, 10, j)
        assert j.value == 5

    def test_paper_dimensions_accepted(self, dev):
        # 10*10 blocks of 8*8 threads, as in listing 4.3.
        f = Kernel(half_kernel, grid_dim=Dim3(10, 10), block_dim=Dim3(8, 8))
        j = Boxed(0)
        f(dev, 10, j)
        assert j.value == 5


class TestConstruction:
    def test_requires_global_qualifier(self):
        def not_global(ctx, x):
            yield op(OpClass.IADD)

        with pytest.raises(CuppTraitError, match="__global__"):
            Kernel(not_global)

    def test_dimensions_settable_later(self, dev):
        f = Kernel(half_kernel)
        with pytest.raises(CuppLaunchError, match="dimensions"):
            f(dev, 10, Boxed(0))
        f.set_grid_dim(1)
        f.set_block_dim(1)
        j = Boxed(0)
        f(dev, 10, j)
        assert j.value == 5

    def test_arity_checked(self, dev):
        f = Kernel(half_kernel, 1, 1)
        with pytest.raises(CuppLaunchError, match="argument"):
            f(dev, 10)


class TestCallByValue:
    def test_value_argument_is_copied(self, dev):
        # §4.3.1 step 1: a copy of the object is generated; mutations by
        # the kernel never reach the caller's object.
        received = {}

        @global_
        def probe(ctx, payload: list):
            received["value"] = list(payload)
            payload.append("device-mutation")
            yield op(OpClass.IADD)

        original = ["a", "b"]
        Kernel(probe, 1, 1)(dev, original)
        assert received["value"] == ["a", "b"]
        assert original == ["a", "b"]  # by-value: caller unaffected

    def test_copy_counted_in_stats(self, dev):
        @global_
        def sink(ctx, a: float, b: float):
            yield op(OpClass.FADD)

        stats = Kernel(sink, 1, 1)(dev, 1.0, 2.0)
        assert stats.value_copies == 2
        assert stats.ref_uploads == 0


class TestCallByReference:
    def test_mutable_ref_copies_back(self, dev):
        @global_
        def incr(ctx, box: Ref[int]):
            yield op(OpClass.IADD)
            box.value += 1

        box = Boxed(41)
        stats = Kernel(incr, 1, 1)(dev, box)
        assert box.value == 42
        assert stats.writebacks == 1
        assert stats.elided_writebacks == 0

    def test_const_ref_skips_copy_back(self, dev):
        # §4.3.2: "if a reference is defined as constant ... the last step
        # is skipped" — the marquee traits optimization.
        @global_
        def reader(ctx, box: ConstRef[int]):
            yield op(OpClass.IADD)
            box.value += 100  # device-side change must be discarded

        box = Boxed(1)
        stats = Kernel(reader, 1, 1)(dev, box)
        assert box.value == 1
        assert stats.writebacks == 0
        assert stats.elided_writebacks == 1

    def test_ref_object_with_dict_updates_in_place(self, dev):
        class State:
            def __init__(self):
                self.hits = 0

        @global_
        def bump(ctx, s: Ref[State]):
            yield op(OpClass.IADD)
            s.hits += 1

        state = State()
        Kernel(bump, 1, 1)(dev, state)
        assert state.hits == 1

    def test_all_threads_share_the_referenced_object(self, dev):
        # Global memory is grid-visible: every thread sees the same object.
        @global_
        def accumulate(ctx, s: Ref[list]):
            yield op(OpClass.IADD)
            s.append(ctx.global_thread_id)

        out: list = []
        Kernel(accumulate, 2, 8)(dev, out)
        assert sorted(out) == list(range(16))

    def test_immutable_by_mutable_ref_is_a_trait_error(self, dev):
        @global_
        def bad(ctx, x: Ref[int]):
            yield op(OpClass.IADD)

        with pytest.raises(CuppTraitError, match="Boxed|dirty|ConstRef"):
            Kernel(bad, 1, 1)(dev, 7)

    def test_ref_upload_bytes_accounted(self, dev):
        @global_
        def reader(ctx, box: ConstRef[int]):
            yield op(OpClass.IADD)

        stats = Kernel(reader, 1, 1)(dev, Boxed(5))
        assert stats.ref_uploads == 1
        assert stats.ref_upload_bytes > 0


class TestCustomProtocol:
    def test_transform_called_for_by_value(self, dev):
        calls = []

        class Fancy:
            def transform(self, device):
                calls.append("transform")
                return 123  # device representation

        received = {}

        @global_
        def probe(ctx, x: Fancy):
            received["x"] = x
            yield op(OpClass.IADD)

        Kernel(probe, 1, 1)(dev, Fancy())
        assert calls == ["transform"]
        assert received["x"] == 123

    def test_custom_dirty_called_for_mutable_ref(self, dev):
        events = []

        class Tracked:
            def __init__(self):
                self.data = 0

            def dirty(self, device_ref):
                events.append("dirty")
                self.data = device_ref.get().data

        @global_
        def mutate(ctx, t: Ref[Tracked]):
            yield op(OpClass.IADD)
            t.data = 99

        tracked = Tracked()
        Kernel(mutate, 1, 1)(dev, tracked)
        assert events == ["dirty"]
        assert tracked.data == 99

    def test_custom_get_device_reference(self, dev):
        from repro.cupp import DeviceReference

        calls = []

        class Custom:
            def __init__(self):
                self.v = 5

            def get_device_reference(self, device):
                calls.append("gdr")
                return DeviceReference(device, self)

        @global_
        def read(ctx, c: ConstRef[Custom]):
            yield op(OpClass.IADD)

        Kernel(read, 1, 1)(dev, Custom())
        assert calls == ["gdr"]

    def test_bad_get_device_reference_rejected(self, dev):
        class Broken:
            def get_device_reference(self, device):
                return "not a DeviceReference"

        @global_
        def read(ctx, c: ConstRef[Broken]):
            yield op(OpClass.IADD)

        with pytest.raises(CuppTraitError, match="DeviceReference"):
            Kernel(read, 1, 1)(dev, Broken())
