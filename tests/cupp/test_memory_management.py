"""Shared pointers and memory1d (§4.2)."""

import copy

import numpy as np
import pytest

from repro.cuda import CudaMachine
from repro.cupp import (
    CuppUsageError,
    Device,
    DeviceSharedPtr,
    Memory1D,
    make_shared,
)
from repro.simgpu import scaled_arch


@pytest.fixture
def dev() -> Device:
    machine = CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)])
    return Device(machine=machine)


class TestSharedPtr:
    def test_allocates_on_construction(self, dev):
        sim = dev.runtime.device
        before = sim.memory.allocation_count
        ptr = DeviceSharedPtr(dev, 1024)
        assert sim.memory.allocation_count == before + 1
        assert ptr.use_count == 1

    def test_clone_shares_allocation(self, dev):
        a = DeviceSharedPtr(dev, 256)
        b = a.clone()
        assert a.get() == b.get()
        assert a.use_count == b.use_count == 2

    def test_copy_module_integration(self, dev):
        a = DeviceSharedPtr(dev, 256)
        b = copy.copy(a)
        assert b.use_count == 2
        c = copy.deepcopy(a)
        assert c.use_count == 3

    def test_freed_only_after_last_release(self, dev):
        # §4.2: "The memory is freed automatically after the last smart
        # pointer pointing to a specific memory address is destroyed."
        sim = dev.runtime.device
        a = make_shared(dev, 512)
        b = a.clone()
        baseline = sim.memory.allocation_count
        a.release()
        assert sim.memory.allocation_count == baseline
        b.release()
        assert sim.memory.allocation_count == baseline - 1

    def test_release_is_idempotent_per_instance(self, dev):
        a = DeviceSharedPtr(dev, 64)
        b = a.clone()
        a.release()
        a.release()  # must not decrement twice
        assert b.use_count == 1

    def test_use_after_release_raises(self, dev):
        a = DeviceSharedPtr(dev, 64)
        a.release()
        with pytest.raises(CuppUsageError):
            a.get()


class TestMemory1D:
    def test_raii_alloc_and_free(self, dev):
        sim = dev.runtime.device
        before = sim.memory.allocation_count
        with Memory1D(dev, np.float32, 100) as mem:
            assert sim.memory.allocation_count == before + 1
            assert mem.nbytes == 400
        assert sim.memory.allocation_count == before

    def test_pointer_style_roundtrip(self, dev):
        data = np.linspace(0, 1, 50, dtype=np.float32)
        mem = Memory1D.from_host(dev, data)
        np.testing.assert_array_equal(mem.copy_to_host(), data)

    def test_iterator_style_transfer(self, dev):
        # §4.2: "the value of the iterator passed to the function is the
        # first value in the memory block, the value the iterator points
        # to when incrementing is the next value ..."
        mem = Memory1D.from_iterable(dev, np.int32, (i * i for i in range(10)))
        assert list(mem) == [i * i for i in range(10)]

    def test_copy_from_iter_preserves_traversal_order(self, dev):
        mem = Memory1D(dev, np.int32, 4)
        mem.copy_from_iter(reversed([1, 2, 3, 4]))
        assert list(mem) == [4, 3, 2, 1]

    def test_copy_is_deep(self, dev):
        # §4.2: "When the object is copied, the copy allocates new memory
        # and copies the data".
        original = Memory1D.from_host(dev, np.array([1, 2, 3], dtype=np.int32))
        dup = copy.copy(original)
        assert dup.ptr != original.ptr
        original.copy_from_host(np.array([9, 9, 9], dtype=np.int32))
        assert list(dup) == [1, 2, 3]

    def test_size_mismatch_rejected(self, dev):
        mem = Memory1D(dev, np.float32, 8)
        with pytest.raises(CuppUsageError):
            mem.copy_from_host(np.zeros(9, dtype=np.float32))

    def test_use_after_close_raises(self, dev):
        mem = Memory1D(dev, np.float32, 8)
        mem.close()
        with pytest.raises(CuppUsageError):
            mem.copy_to_host()

    def test_close_idempotent_and_safe_after_device_close(self, dev):
        mem = Memory1D(dev, np.float32, 8)
        dev.close()
        mem.close()  # device already reclaimed everything; must not raise

    def test_view_not_host_indexable(self, dev):
        mem = Memory1D(dev, np.float32, 8)
        with pytest.raises(Exception, match="host"):
            mem.view()[0]
