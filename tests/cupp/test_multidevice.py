"""Multi-device support (ch. 7 future work): DeviceGroup + MultiKernel."""

import numpy as np
import pytest

from repro.cuda import CudaMachine, global_
from repro.cupp import (
    ConstRef,
    CuppUsageError,
    DeviceGroup,
    DeviceVector,
    MultiKernel,
    Ref,
    Vector,
    shard,
)
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st


def make_machine(n_devices=2) -> CudaMachine:
    return CudaMachine(
        [scaled_arch(f"gpu{i}", 2, memory_bytes=1 << 22) for i in range(n_devices)]
    )


@global_
def double_chunk(ctx, v: Ref[DeviceVector]):
    i = ctx.global_thread_id
    if i < len(v):
        x = yield ld(v.view, i)
        yield op(OpClass.FMUL)
        yield st(v.view, i, x * 2.0)


@global_
def axpy_chunk(ctx, a: float, x: ConstRef[DeviceVector], y: Ref[DeviceVector]):
    i = ctx.global_thread_id
    if i < len(y):
        xi = yield ld(x.view, i)
        yi = yield ld(y.view, i)
        yield op(OpClass.FMAD)
        yield st(y.view, i, a * xi + yi)


class TestDeviceGroup:
    def test_one_handle_per_device(self):
        group = DeviceGroup(make_machine(3))
        assert len(group) == 3
        names = {d.name for d in group}
        assert names == {"gpu0", "gpu1", "gpu2"}

    def test_each_handle_keeps_its_own_runtime_binding(self):
        # §3.2.1's one-device-per-thread rule is honored per runtime.
        group = DeviceGroup(make_machine(2))
        ids = {d.runtime.device.device_id for d in group}
        assert len(ids) == 2

    def test_subset_selection(self):
        group = DeviceGroup(make_machine(3), indices=[2])
        assert len(group) == 1
        assert group.devices[0].name == "gpu2"

    def test_empty_group_rejected(self):
        with pytest.raises(CuppUsageError):
            DeviceGroup(make_machine(2), indices=[])

    def test_chunk_bounds_cover_everything(self):
        group = DeviceGroup(make_machine(3))
        bounds = group.chunk_bounds(100)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 100
        sizes = [b - a for a, b in bounds]
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 1

    def test_chunk_bounds_uneven_remainder_goes_to_leading_devices(self):
        # 10 over 4 devices: remainder 2 lands on the first two chunks.
        group = DeviceGroup(make_machine(4))
        assert group.chunk_bounds(10) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_chunk_bounds_single_device_group(self):
        group = DeviceGroup(make_machine(1))
        assert group.chunk_bounds(7) == [(0, 7)]
        assert group.chunk_bounds(0) == [(0, 0)]

    def test_chunk_bounds_fewer_elements_than_devices(self):
        # Trailing devices get empty [k, k) chunks, never negative ones.
        group = DeviceGroup(make_machine(4))
        bounds = group.chunk_bounds(2)
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]
        assert all(stop >= start for start, stop in bounds)

    def test_context_manager_closes_all(self):
        with DeviceGroup(make_machine(2)) as group:
            for d in group:
                d.alloc(256)
        for d in group:
            with pytest.raises(CuppUsageError):
                d.alloc(1)


class TestMultiKernel:
    def test_sharded_mutation_gathers_back(self):
        group = DeviceGroup(make_machine(2))
        v = Vector(np.arange(64, dtype=np.float32))
        mk = MultiKernel(double_chunk, 1, 32)
        stats = mk(group, shard(v))
        assert len(stats) == 2
        np.testing.assert_array_equal(
            v.to_numpy(), np.arange(64, dtype=np.float32) * 2
        )

    def test_mixed_sharded_and_replicated_args(self):
        group = DeviceGroup(make_machine(2))
        x = Vector(np.ones(64, np.float32))
        y = Vector(np.full(64, 10.0, np.float32))
        mk = MultiKernel(axpy_chunk, 1, 32)
        mk(group, 3.0, shard(x), shard(y))
        np.testing.assert_array_equal(y.to_numpy(), np.full(64, 13.0))
        np.testing.assert_array_equal(x.to_numpy(), np.ones(64))  # const

    def test_uneven_split(self):
        group = DeviceGroup(make_machine(3))
        v = Vector(np.arange(50, dtype=np.float32))
        mk = MultiKernel(double_chunk, 1, 32)
        mk(group, shard(v))
        np.testing.assert_array_equal(
            v.to_numpy(), np.arange(50, dtype=np.float32) * 2
        )

    def test_every_device_received_work(self):
        group = DeviceGroup(make_machine(2))
        v = Vector(np.ones(64, np.float32))
        MultiKernel(double_chunk, 1, 32)(group, shard(v))
        for d in group:
            assert d.runtime.launch_count == 1

    def test_devices_overlap_in_time(self):
        # The group's makespan must be far below the sum of device times:
        # the launches run concurrently on independent timelines.
        group = DeviceGroup(make_machine(2))
        v = Vector(np.ones(64, np.float32))
        MultiKernel(double_chunk, 1, 32)(group, shard(v))
        busy = [d.sim.timeline.device_busy_until for d in group]
        assert group.makespan_s <= sum(busy)
        assert all(b > 0 for b in busy)

    def test_no_sharded_argument_rejected(self):
        group = DeviceGroup(make_machine(2))
        mk = MultiKernel(double_chunk, 1, 32)
        with pytest.raises(CuppUsageError, match="sharded"):
            mk(group, Vector(np.ones(4, np.float32)))

    def test_mismatched_shard_lengths_rejected(self):
        group = DeviceGroup(make_machine(2))
        mk = MultiKernel(axpy_chunk, 1, 32)
        with pytest.raises(CuppUsageError, match="same length"):
            mk(
                group,
                1.0,
                shard(Vector(np.ones(8, np.float32))),
                shard(Vector(np.ones(9, np.float32))),
            )

    def test_shard_requires_vector(self):
        with pytest.raises(CuppUsageError):
            shard([1, 2, 3])

    def test_for_chunks_sets_dimensions(self):
        group = DeviceGroup(make_machine(2))
        mk = MultiKernel(double_chunk)
        mk.for_chunks(group, total=64, block=16)
        v = Vector(np.ones(64, np.float32))
        mk(group, shard(v))
        np.testing.assert_array_equal(v.to_numpy(), np.full(64, 2.0))
