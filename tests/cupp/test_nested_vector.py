"""vector<vector<T>> across the kernel boundary (§4.6's claim)."""

import numpy as np
import pytest

from repro.cuda import CudaMachine, global_
from repro.cupp import (
    ConstRef,
    CuppUsageError,
    Device,
    DeviceNestedVector,
    DeviceVector,
    Kernel,
    NestedVector,
    Ref,
    Vector,
)
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st


@pytest.fixture
def dev() -> Device:
    return Device(machine=CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)]))


@global_
def row_sums(ctx, m: ConstRef[DeviceNestedVector], out: Ref[DeviceVector]):
    """One thread per row: sum the row through the CSR layout."""
    r = ctx.global_thread_id
    if r < len(m):
        start = yield ld(m.offsets, r)
        stop = yield ld(m.offsets, r + 1)
        total = 0.0
        for slot in range(start, stop):
            v = yield ld(m.values, slot)
            total += v
            yield op(OpClass.FADD)
        yield st(out.view, r, total)


@global_
def scale_rows(ctx, m: Ref[DeviceNestedVector]):
    """One thread per row: multiply every element by (row index + 1)."""
    r = ctx.global_thread_id
    if r < len(m):
        start = yield ld(m.offsets, r)
        stop = yield ld(m.offsets, r + 1)
        for slot in range(start, stop):
            v = yield ld(m.values, slot)
            yield op(OpClass.FMUL)
            yield st(m.values, slot, v * (r + 1.0))


class TestHostInterface:
    def test_construction_and_lengths(self):
        nv = NestedVector([[1, 2, 3], [4], [], [5, 6]])
        assert len(nv) == 4
        assert nv.row_lengths() == [3, 1, 0, 2]
        assert nv.total_elements() == 6

    def test_rows_grow_independently(self):
        nv = NestedVector([[1], [2]])
        nv[0].push_back(9)
        assert nv.to_lists() == [[1, 9], [2]]

    def test_push_and_pop_rows(self):
        nv = NestedVector()
        nv.push_back([1, 2])
        nv.push_back(Vector([3], dtype=np.float32))
        assert len(nv) == 2
        popped = nv.pop_back()
        assert list(popped) == [3]

    def test_dtype_mismatch_rejected(self):
        nv = NestedVector(dtype=np.float32)
        with pytest.raises(CuppUsageError):
            nv.push_back(Vector([1], dtype=np.int32))

    def test_pop_empty(self):
        with pytest.raises(CuppUsageError):
            NestedVector().pop_back()


class TestKernelInterplay:
    def test_ragged_row_sums(self, dev):
        rows = [[1.0, 2.0, 3.0], [10.0], [], [4.0, 4.0]]
        nv = NestedVector(rows)
        out = Vector(np.zeros(4, np.float32), dtype=np.float32)
        Kernel(row_sums, 1, 4)(dev, nv, out)
        np.testing.assert_array_equal(out.to_numpy(), [6.0, 10.0, 0.0, 8.0])

    def test_device_mutation_lazily_visible(self, dev):
        nv = NestedVector([[1.0, 1.0], [1.0], [1.0, 1.0, 1.0]])
        Kernel(scale_rows, 1, 3)(dev, nv)
        assert nv.downloads == 0  # nothing read back yet
        assert nv.to_lists() == [[1.0, 1.0], [2.0], [3.0, 3.0, 3.0]]
        assert nv.downloads == 1

    def test_const_ref_reuses_device_copy(self, dev):
        nv = NestedVector([[1.0], [2.0]])
        out = Vector(np.zeros(2, np.float32), dtype=np.float32)
        k = Kernel(row_sums, 1, 2)
        k(dev, nv, out)
        k(dev, nv, out)
        assert nv.uploads == 1

    def test_host_row_growth_reuploads(self, dev):
        nv = NestedVector([[1.0], [2.0]])
        out = Vector(np.zeros(2, np.float32), dtype=np.float32)
        k = Kernel(row_sums, 1, 2)
        k(dev, nv, out)
        nv[1].push_back(5.0)  # ragged growth on the host
        k(dev, nv, out)
        assert nv.uploads == 2
        np.testing.assert_array_equal(out.to_numpy(), [1.0, 7.0])

    def test_empty_nested_vector(self, dev):
        nv = NestedVector()
        out = Vector(np.zeros(1, np.float32), dtype=np.float32)
        Kernel(row_sums, 1, 1)(dev, nv, out)  # guard keeps threads out
        assert out[0] == 0.0

    def test_type_bindings(self):
        from repro.cupp import validate_binding

        validate_binding(NestedVector)
        validate_binding(DeviceNestedVector)

    def test_reference_image_is_metadata_sized(self, dev):
        big = NestedVector([list(range(100)) for _ in range(10)])
        dref = big.get_device_reference(dev)
        assert dref.nbytes < 256  # pointers, not payload
