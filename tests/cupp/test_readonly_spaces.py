"""The chapter-7 extension: const-reference vectors served from texture
or constant memory, automatically."""

import numpy as np
import pytest

from repro.cuda import CudaMachine, global_
from repro.cupp import ConstRef, CuppUsageError, Device, DeviceVector, Kernel, Ref, Vector
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu import devicelib as dl
from repro.simgpu.isa import op, st


@pytest.fixture
def dev() -> Device:
    return Device(machine=CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)]))


@global_
def gather_sum(ctx, src: ConstRef[DeviceVector], out: Ref[DeviceVector]):
    """Every thread reads the whole source — the Boids access pattern."""
    i = ctx.global_thread_id
    total = 0.0
    for j in range(len(src)):
        v = yield from dl.ld_auto(src, j)
        total += v
        yield op(OpClass.FADD)
    yield st(out.view, i, total)


def run(dev, source_vector, n=32):
    out = Vector(np.zeros(n, np.float32), dtype=np.float32)
    Kernel(gather_sum, 1, n)(dev, source_vector, out)
    return out.to_numpy(), dev.runtime.last_launch.profile


class TestTexturePlacement:
    def test_results_identical_to_global(self, dev):
        data = np.arange(16, dtype=np.float32)
        got_g, _ = run(dev, Vector(data, readonly_space="global"))
        got_t, _ = run(dev, Vector(data, readonly_space="texture"))
        np.testing.assert_array_equal(got_g, got_t)
        assert got_t[0] == data.sum()

    def test_texture_reads_used(self, dev):
        _, profile = run(dev, Vector(np.ones(16, np.float32), readonly_space="texture"))
        assert profile.op_counts[OpClass.TEXTURE_READ] > 0
        assert profile.texture_hits > 0

    def test_traffic_reduction(self, dev):
        data = np.ones(64, np.float32)
        _, p_global = run(dev, Vector(data, readonly_space="global"))
        _, p_texture = run(dev, Vector(data, readonly_space="texture"))
        assert p_texture.bytes_read * 20 < p_global.bytes_read


class TestConstantPlacement:
    def test_results_identical_to_global(self, dev):
        data = np.linspace(0, 1, 16).astype(np.float32)
        got_g, _ = run(dev, Vector(data, readonly_space="global"))
        got_c, _ = run(dev, Vector(data, readonly_space="constant"))
        np.testing.assert_allclose(got_g, got_c, rtol=1e-6)

    def test_constant_reads_used(self, dev):
        _, profile = run(dev, Vector(np.ones(8, np.float32), readonly_space="constant"))
        assert profile.op_counts[OpClass.CONSTANT_READ] > 0

    def test_uniform_scan_is_near_free(self, dev):
        # All threads read src[j] together: broadcast + cache -> almost
        # no device-memory traffic.
        _, profile = run(dev, Vector(np.ones(16, np.float32), readonly_space="constant"))
        assert profile.constant_misses <= 2  # line granularity
        assert profile.bytes_read <= 2 * 32

    def test_host_write_invalidates_constant_mirror(self, dev):
        v = Vector(np.ones(8, np.float32), readonly_space="constant")
        got1, _ = run(dev, v)
        assert got1[0] == 8.0
        v[0] = 100.0  # host write -> constant mirror stale
        got2, _ = run(dev, v)
        assert got2[0] == pytest.approx(107.0)

    def test_mirror_reused_when_clean(self, dev):
        v = Vector(np.ones(8, np.float32), readonly_space="constant")
        run(dev, v)
        ups = v.uploads
        run(dev, v)
        assert v.uploads == ups  # no re-upload for the second launch


class TestAutoPlacement:
    def test_small_vector_goes_constant(self, dev):
        v = Vector(np.ones(8, np.float32), readonly_space="auto")
        _, profile = run(dev, v)
        assert profile.op_counts[OpClass.CONSTANT_READ] > 0

    def test_large_vector_goes_texture(self, dev):
        big = np.ones(Vector.CONSTANT_AUTO_LIMIT // 4 + 64, np.float32)
        v = Vector(big, readonly_space="auto")
        dv = v.transform_readonly(dev)
        assert dv.space == "texture"

    def test_unknown_space_rejected(self):
        with pytest.raises(CuppUsageError):
            Vector(np.ones(4), readonly_space="l2")

    def test_mutable_ref_still_uses_global(self, dev):
        # The upgrade only applies to const parameters: a kernel that
        # writes the vector gets the plain global-memory path.
        @global_
        def scale(ctx, v: Ref[DeviceVector]):
            i = ctx.global_thread_id
            if i < len(v):
                x = yield from dl.ld_auto(v, i)
                yield op(OpClass.FMUL)
                yield st(v.view, i, x * 2.0)

        v = Vector(np.arange(8, dtype=np.float32), readonly_space="auto")
        Kernel(scale, 1, 8)(dev, v)
        np.testing.assert_array_equal(
            v.to_numpy(), np.arange(8, dtype=np.float32) * 2
        )

    def test_default_space_is_global_unchanged(self, dev):
        v = Vector(np.ones(8, np.float32))
        dv = v.transform_readonly(dev)
        assert dv.space == "global"
