"""Vectors of structured dtypes — C-struct elements (POD records).

The paper's C-interop discussion (§3.3) leans on C/C++ struct layout
compatibility; numpy structured dtypes are the Python analog of those
PODs, and a cupp.Vector of records crosses the kernel boundary like any
other element type.
"""

import numpy as np
import pytest

from repro.cuda import CudaMachine, global_
from repro.cupp import ConstRef, Device, DeviceVector, Kernel, Ref, Vector
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st

#: A C-style struct: { float mass; float charge; }
PARTICLE = np.dtype([("mass", np.float32), ("charge", np.float32)])


@pytest.fixture
def dev() -> Device:
    return Device(machine=CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)]))


@global_
def total_charge(ctx, parts: ConstRef[DeviceVector], out: Ref[DeviceVector]):
    """Thread 0 sums the charge field across all records."""
    if ctx.global_thread_id == 0:
        total = 0.0
        for j in range(len(parts)):
            record = yield ld(parts.view, j)  # one struct load
            total += record[1]  # .charge
            yield op(OpClass.FADD)
        yield st(out.view, 0, total)


class TestStructuredVector:
    def make_particles(self, n=8):
        data = np.zeros(n, dtype=PARTICLE)
        data["mass"] = np.arange(n) + 1.0
        data["charge"] = np.linspace(-1, 1, n)
        return data

    def test_host_roundtrip(self):
        data = self.make_particles()
        v = Vector(data, dtype=PARTICLE)
        assert len(v) == 8
        mass, charge = v[3]
        assert mass == pytest.approx(4.0)

    def test_push_back_record(self):
        v = Vector(dtype=PARTICLE)
        v.push_back((2.5, -0.5))
        assert len(v) == 1
        assert v[0] == (2.5, -0.5)

    def test_kernel_reads_struct_fields(self, dev):
        data = self.make_particles()
        v = Vector(data, dtype=PARTICLE)
        out = Vector(np.zeros(1, np.float32), dtype=np.float32)
        Kernel(total_charge, 1, 1)(dev, v, out)
        assert out[0] == pytest.approx(float(data["charge"].sum()), abs=1e-6)

    def test_device_roundtrip_preserves_layout(self, dev):
        data = self.make_particles()
        v = Vector(data, dtype=PARTICLE)
        v.transform(dev)  # upload
        v._host_valid = False  # force a download on next read
        fresh = v.to_numpy()
        np.testing.assert_array_equal(fresh, data)

    def test_itemsize_is_c_layout(self):
        # Two packed float32 fields = 8 bytes, like the C struct.
        assert PARTICLE.itemsize == 8
