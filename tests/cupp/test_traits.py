"""Signature traits and host/device type transformation (§4.3.2, §4.5)."""

import pytest

from repro.cuda import global_
from repro.cupp import (
    ConstRef,
    CuppTraitError,
    PassKind,
    Ref,
    analyze_kernel,
    bind_types,
    device_type_of,
    host_type_of,
    unbind_types,
    validate_binding,
)
from repro.cupp.traits import RefSpec
from repro.simgpu import OpClass
from repro.simgpu.isa import op


class TestRefMarkers:
    def test_ref_builds_mutable_spec(self):
        spec = Ref[int]
        assert isinstance(spec, RefSpec)
        assert spec.inner is int
        assert not spec.const

    def test_const_ref_builds_const_spec(self):
        spec = ConstRef[float]
        assert spec.const
        assert spec.inner is float


class TestAnalyzeKernel:
    def test_mixed_signature(self):
        @global_
        def k(ctx, a: int, b: Ref[float], c: ConstRef[list], d):
            yield op(OpClass.IADD)

        traits = analyze_kernel(k)
        assert traits.arity == 4
        kinds = [p.kind for p in traits.params]
        assert kinds == [
            PassKind.VALUE,
            PassKind.REF,
            PassKind.CONST_REF,
            PassKind.VALUE,
        ]
        assert traits.params[1].copies_back
        assert not traits.params[2].copies_back

    def test_works_on_wrapped_and_raw_functions(self):
        def raw(ctx, x: Ref[int]):
            yield op(OpClass.IADD)

        wrapped = global_(raw)
        assert analyze_kernel(raw) == analyze_kernel(wrapped)

    def test_parameterless_function_rejected(self):
        def bad():
            yield op(OpClass.IADD)

        with pytest.raises(CuppTraitError, match="context"):
            analyze_kernel(bad)

    def test_varargs_rejected(self):
        def bad(ctx, *args):
            yield op(OpClass.IADD)

        with pytest.raises(CuppTraitError, match="kernel-stack"):
            analyze_kernel(bad)

    def test_context_only_kernel_has_zero_arity(self):
        def k(ctx):
            yield op(OpClass.IADD)

        assert analyze_kernel(k).arity == 0


class TestTypeTransformRegistry:
    def test_pod_is_its_own_device_type(self):
        assert device_type_of(int) is int
        assert host_type_of(float) is float

    def test_bind_and_resolve(self):
        class HostThing:
            pass

        class DevThing:
            pass

        bind_types(HostThing, DevThing)
        try:
            assert device_type_of(HostThing) is DevThing
            assert host_type_of(DevThing) is HostThing
            validate_binding(HostThing)
        finally:
            unbind_types(HostThing, DevThing)

    def test_one_to_one_enforced(self):
        class H:
            pass

        class D1:
            pass

        class D2:
            pass

        bind_types(H, D1)
        try:
            with pytest.raises(CuppTraitError, match="1:1"):
                bind_types(H, D2)
            with pytest.raises(CuppTraitError, match="1:1"):
                bind_types(D2, D1)  # D1 already the partner of H
        finally:
            unbind_types(H, D1)

    def test_declared_typedefs_listing_4_6(self):
        # Both structs carry both typedefs, exactly as in listing 4.6.
        class DevX:
            pass

        class HostX:
            device_type = DevX
            host_type = None  # patched below

        HostX.host_type = HostX
        DevX.device_type = DevX
        DevX.host_type = HostX

        assert device_type_of(HostX) is DevX
        assert host_type_of(DevX) is HostX
        validate_binding(HostX)

    def test_asymmetric_declaration_detected(self):
        class Other:
            pass

        class DevY:
            host_type = Other  # wrong back-pointer

        class HostY:
            device_type = DevY

        with pytest.raises(CuppTraitError, match="1:1"):
            validate_binding(HostY)

    def test_kernel_with_bad_binding_fails_at_construction(self):
        # The paper pays at compile time; we pay at Kernel() construction.
        from repro.cupp import Kernel

        class DevZ:
            host_type = int

        class HostZ:
            device_type = DevZ

        @global_
        def k(ctx, z: HostZ):
            yield op(OpClass.IADD)

        with pytest.raises(CuppTraitError, match="1:1"):
            Kernel(k, 1, 1)
