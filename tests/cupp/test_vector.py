"""cupp.Vector: STL behaviour + lazy memory copying (§4.6)."""

import copy

import numpy as np
import pytest

from repro.cuda import CudaMachine, global_
from repro.cupp import (
    ConstRef,
    CuppUsageError,
    Device,
    DeviceVector,
    Kernel,
    Ref,
    Vector,
)
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st


@pytest.fixture
def dev() -> Device:
    return Device(machine=CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)]))


@global_
def double_all(ctx, v: Ref[DeviceVector]):
    i = ctx.global_thread_id
    if i < len(v):
        x = yield ld(v.view, i)
        yield op(OpClass.FMUL)
        yield st(v.view, i, x * 2.0)


@global_
def read_only(ctx, v: ConstRef[DeviceVector]):
    i = ctx.global_thread_id
    if i < len(v):
        _ = yield ld(v.view, i)


class TestStlBehaviour:
    def test_push_back_and_index(self):
        v = Vector(dtype=np.float32)
        for i in range(10):
            v.push_back(i * 1.5)
        assert len(v) == 10
        assert v[3] == pytest.approx(4.5)
        assert v[-1] == pytest.approx(13.5)

    def test_pop_back(self):
        v = Vector([1, 2, 3], dtype=np.int32)
        assert v.pop_back() == 3
        assert len(v) == 2

    def test_pop_empty_raises(self):
        with pytest.raises(CuppUsageError):
            Vector(dtype=np.int32).pop_back()

    def test_resize_grow_and_shrink(self):
        v = Vector([1, 2], dtype=np.int32)
        v.resize(5, fill=7)
        assert list(v) == [1, 2, 7, 7, 7]
        v.resize(1)
        assert list(v) == [1]

    def test_setitem_getitem(self):
        v = Vector([0, 0, 0], dtype=np.int64)
        v[1] = 42
        assert v[1] == 42

    def test_out_of_range(self):
        v = Vector([1], dtype=np.int32)
        with pytest.raises(IndexError):
            v[5]
        with pytest.raises(IndexError):
            v[5] = 1

    def test_iteration_and_extend(self):
        v = Vector(dtype=np.int32)
        v.extend(range(5))
        assert list(v) == [0, 1, 2, 3, 4]

    def test_insert(self):
        v = Vector([1, 3], dtype=np.int32)
        v.insert(1, 2)
        assert list(v) == [1, 2, 3]
        v.insert(0, 0)
        v.insert(4, 4)
        assert list(v) == [0, 1, 2, 3, 4]

    def test_insert_out_of_range(self):
        with pytest.raises(IndexError):
            Vector([1], dtype=np.int32).insert(5, 9)

    def test_erase(self):
        v = Vector([10, 20, 30], dtype=np.int32)
        assert v.erase(1) == 20
        assert list(v) == [10, 30]

    def test_insert_and_erase_invalidate_device(self):
        v = Vector([1.0, 2.0], dtype=np.float32)
        v._device_valid = True  # pretend a copy exists
        v.insert(0, 0.0)
        assert not v._device_valid

    def test_copy_has_own_dataset(self):
        v = Vector([1, 2, 3], dtype=np.int32)
        w = copy.copy(v)
        w[0] = 99
        assert v[0] == 1

    def test_to_numpy_is_read_only(self):
        v = Vector([1, 2], dtype=np.int32)
        arr = v.to_numpy()
        with pytest.raises(ValueError):
            arr[0] = 5

    def test_equality(self):
        assert Vector([1, 2], dtype=np.int32) == Vector([1, 2], dtype=np.int32)
        assert not Vector([1], dtype=np.int32) == Vector([2], dtype=np.int32)


class TestKernelInterplay:
    def test_mutable_ref_roundtrip(self, dev):
        v = Vector(np.arange(32, dtype=np.float32))
        Kernel(double_all, 1, 32)(dev, v)
        np.testing.assert_array_equal(
            v.to_numpy(), np.arange(32, dtype=np.float32) * 2
        )

    def test_two_kernels_one_upload(self, dev):
        # §4.6: "the developer may pass a vector directly to one or
        # multiple kernels ... memory is only transferred if really needed".
        v = Vector(np.arange(32, dtype=np.float32))
        k = Kernel(double_all, 1, 32)
        k(dev, v)
        k(dev, v)
        assert v.uploads == 1  # second launch reuses the device copy
        np.testing.assert_array_equal(
            v.to_numpy(), np.arange(32, dtype=np.float32) * 4
        )

    def test_download_deferred_until_host_read(self, dev):
        v = Vector(np.arange(32, dtype=np.float32))
        Kernel(double_all, 1, 32)(dev, v)
        assert v.downloads == 0  # nothing read back yet
        _ = v[0]
        assert v.downloads == 1

    def test_const_ref_never_invalidates_host(self, dev):
        v = Vector(np.arange(32, dtype=np.float32))
        Kernel(read_only, 1, 32)(dev, v)
        assert v.downloads == 0
        _ = v[5]  # host data still valid: no download triggered
        assert v.downloads == 0

    def test_host_write_invalidates_device(self, dev):
        v = Vector(np.arange(32, dtype=np.float32))
        k = Kernel(double_all, 1, 32)
        k(dev, v)
        v[0] = 100.0  # host mutation -> device copy stale
        k(dev, v)
        assert v.uploads == 2
        assert v[0] == pytest.approx(200.0)

    def test_interleaved_host_device_mutation(self, dev):
        v = Vector(np.ones(32, dtype=np.float32))
        k = Kernel(double_all, 1, 32)
        k(dev, v)  # x2 on device
        for i in range(32):
            v[i] = v[i] + 1  # host: 2 -> 3 (forces download + upload)
        k(dev, v)  # x2 on device: 6
        np.testing.assert_array_equal(v.to_numpy(), np.full(32, 6.0, np.float32))

    def test_pass_by_value_copies_all_elements(self, dev):
        # The §7 performance trap: by-value vector = copy-constructor call
        # per element, and device changes are lost.
        @global_
        def scale(ctx, v: DeviceVector):
            i = ctx.global_thread_id
            if i < len(v):
                x = yield ld(v.view, i)
                yield op(OpClass.FMUL)
                yield st(v.view, i, x * 10.0)

        v = Vector(np.ones(8, dtype=np.float32))
        stats = Kernel(scale, 1, 8)(dev, v)
        assert stats.value_copies == 1
        # By-value: the ORIGINAL vector must be unchanged...
        np.testing.assert_array_equal(v.to_numpy(), np.ones(8, np.float32))

    def test_resize_after_kernel_reallocates_device_block(self, dev):
        v = Vector(np.arange(16, dtype=np.float32))
        k = Kernel(double_all, 1, 32)
        k(dev, v)
        v.push_back(99.0)
        k(dev, v)
        assert v.uploads == 2
        assert len(v) == 17
        assert v[16] == pytest.approx(198.0)

    def test_vector_bound_to_one_device(self, dev):
        other = Device(
            machine=CudaMachine([scaled_arch("o", 2, memory_bytes=1 << 22)])
        )
        v = Vector(np.arange(8, dtype=np.float32))
        Kernel(read_only, 1, 8)(dev, v)
        with pytest.raises(CuppUsageError, match="different device"):
            Kernel(read_only, 1, 8)(other, v)


class TestDeviceVector:
    def test_pack_unpack_is_pointer_sized_not_data_sized(self, dev):
        # The reference image in global memory holds {ptr, size}, not the
        # payload — the payload already lives in global memory.
        v = Vector(np.arange(1024, dtype=np.float32))
        dv = v.transform(dev)
        blob = dv.pack()
        assert blob.size < 256  # metadata only, nothing like 4 KiB
        rebuilt = DeviceVector.unpack(blob, dev)
        assert rebuilt.view.ptr == dv.view.ptr
        assert len(rebuilt) == 1024

    def test_type_bindings_are_1_to_1(self):
        from repro.cupp import validate_binding

        validate_binding(Vector)
        validate_binding(DeviceVector)
