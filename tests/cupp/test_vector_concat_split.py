"""Vector.concat / Vector.split_at — the batching data path."""

import numpy as np
import pytest

from repro import obs
from repro.cuda import CudaMachine, global_
from repro.cupp import (
    CuppUsageError,
    Device,
    DeviceVector,
    Kernel,
    Ref,
    Vector,
)
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st


@pytest.fixture(autouse=True)
def _clean_obs():
    """Ledger assertions need a fresh global trio per test."""
    obs.reset()
    yield
    obs.reset()


@pytest.fixture
def dev() -> Device:
    return Device(machine=CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)]))


@global_
def double_all(ctx, v: Ref[DeviceVector]):
    i = ctx.global_thread_id
    if i < len(v):
        x = yield ld(v.view, i)
        yield op(OpClass.FMUL)
        yield st(v.view, i, x * 2.0)


class TestConcat:
    def test_round_trip(self):
        a = Vector(np.arange(4, dtype=np.float32))
        b = Vector(np.arange(4, 10, dtype=np.float32))
        fused = Vector.concat([a, b])
        np.testing.assert_array_equal(
            fused.to_numpy(), np.arange(10, dtype=np.float32)
        )
        parts = fused.split_at(4)
        assert [len(p) for p in parts] == [4, 6]
        np.testing.assert_array_equal(parts[0].to_numpy(), a.to_numpy())
        np.testing.assert_array_equal(parts[1].to_numpy(), b.to_numpy())

    def test_result_is_independent_of_parts(self):
        a = Vector(np.zeros(3, dtype=np.float32))
        fused = Vector.concat([a, a])
        a[0] = 99.0
        assert fused[0] == 0.0 and fused[3] == 0.0

    def test_empty_parts_rejected(self):
        with pytest.raises(CuppUsageError):
            Vector.concat([])

    def test_non_vector_parts_rejected(self):
        with pytest.raises(CuppUsageError):
            Vector.concat([Vector(np.zeros(2)), np.zeros(2)])

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(CuppUsageError):
            Vector.concat(
                [Vector(np.zeros(2), dtype=np.float32),
                 Vector(np.zeros(2), dtype=np.int32)]
            )

    def test_device_dirty_part_downloaded_with_batch_concat_cause(self, dev):
        # A part whose freshest copy lives on a device must come back to
        # the host before fusing — and the ledger blames the batching
        # data path, not a generic lazy miss.
        v = Vector(np.arange(8, dtype=np.float32))
        Kernel(double_all, 1, 8)(dev, v)
        assert v.downloads == 0
        fused = Vector.concat([v, Vector(np.zeros(2, dtype=np.float32))])
        assert v.downloads == 1
        led = obs.get_ledger().snapshot()
        assert led["bytes_by_cause"]["batch-concat"] == 8 * 4
        np.testing.assert_array_equal(
            fused.to_numpy()[:8], np.arange(8, dtype=np.float32) * 2
        )

    def test_host_clean_parts_record_no_transfer(self):
        a = Vector(np.ones(4, dtype=np.float32))
        b = Vector(np.ones(4, dtype=np.float32))
        Vector.concat([a, b])
        led = obs.get_ledger().snapshot()
        assert led["bytes_by_cause"]["batch-concat"] == 0


class TestSplitAt:
    def test_no_offsets_is_whole_copy(self):
        v = Vector(np.arange(5, dtype=np.float32))
        (only,) = v.split_at()
        np.testing.assert_array_equal(only.to_numpy(), v.to_numpy())

    def test_empty_slices_allowed_at_edges(self):
        v = Vector(np.arange(4, dtype=np.float32))
        parts = v.split_at(0, 2, 4)
        assert [len(p) for p in parts] == [0, 2, 2, 0]

    def test_decreasing_offsets_rejected(self):
        v = Vector(np.arange(4, dtype=np.float32))
        with pytest.raises(CuppUsageError):
            v.split_at(3, 1)

    def test_out_of_range_offsets_rejected(self):
        v = Vector(np.arange(4, dtype=np.float32))
        with pytest.raises(CuppUsageError):
            v.split_at(5)
        with pytest.raises(CuppUsageError):
            v.split_at(-1)

    def test_slices_are_independent_copies(self):
        v = Vector(np.arange(6, dtype=np.float32))
        left, right = v.split_at(3)
        left[0] = -1.0
        assert v[0] == 0.0
        v[3] = 42.0
        assert right[0] == 3.0

    def test_device_dirty_vector_downloaded_with_batch_split_cause(self, dev):
        v = Vector(np.arange(8, dtype=np.float32))
        Kernel(double_all, 1, 8)(dev, v)
        left, right = v.split_at(4)
        assert v.downloads == 1
        led = obs.get_ledger().snapshot()
        assert led["bytes_by_cause"]["batch-split"] == 8 * 4
        np.testing.assert_array_equal(
            left.to_numpy(), np.arange(4, dtype=np.float32) * 2
        )
        np.testing.assert_array_equal(
            right.to_numpy(), np.arange(4, 8, dtype=np.float32) * 2
        )

    def test_split_then_kernel_per_slice(self, dev):
        # The demux direction of serving: slices are full Vectors and can
        # go straight back onto a device.
        v = Vector(np.arange(8, dtype=np.float32))
        left, right = v.split_at(4)
        Kernel(double_all, 1, 4)(dev, left)
        np.testing.assert_array_equal(
            left.to_numpy(), np.arange(4, dtype=np.float32) * 2
        )
        np.testing.assert_array_equal(
            right.to_numpy(), np.arange(4, 8, dtype=np.float32)
        )
