"""Property-based testing of cupp.Vector's lazy-copy state machine.

The model: a plain Python list of floats.  Whatever interleaving of host
mutations, kernel launches (device-side x2), and host reads occurs, the
vector must agree with the model — lazy copying must be *semantically
invisible* (§4.6), only the transfer counts may differ.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.cuda import CudaMachine, global_
from repro.cupp import Device, DeviceVector, Kernel, Ref, Vector
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st as store

MAX_LEN = 48  # fits in one probing block


@global_
def double_kernel(ctx, v: Ref[DeviceVector]):
    i = ctx.global_thread_id
    if i < len(v):
        x = yield ld(v.view, i)
        yield op(OpClass.FMUL)
        yield store(v.view, i, x * 2.0)


class VectorMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.dev = Device(
            machine=CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)])
        )
        self.vec = Vector(dtype=np.float64)
        self.model: list[float] = []
        self.kernel = Kernel(double_kernel, 2, MAX_LEN // 2)

    @precondition(lambda self: len(self.model) < MAX_LEN)
    @rule(x=st.floats(-1e6, 1e6, allow_nan=False))
    def push(self, x):
        self.vec.push_back(x)
        self.model.append(float(np.float64(x)))

    @precondition(lambda self: self.model)
    @rule()
    def pop(self):
        assert self.vec.pop_back() == self.model.pop()

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def write_element(self, data):
        i = data.draw(st.integers(0, len(self.model) - 1))
        x = data.draw(st.floats(-1e6, 1e6, allow_nan=False))
        self.vec[i] = x
        self.model[i] = float(np.float64(x))

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def read_element(self, data):
        i = data.draw(st.integers(0, len(self.model) - 1))
        assert self.vec[i] == self.model[i]

    @precondition(lambda self: self.model)
    @rule()
    def run_kernel(self):
        self.kernel(self.dev, self.vec)
        self.model = [x * 2.0 for x in self.model]

    @rule()
    def resize(self):
        n = min(len(self.model) + 3, MAX_LEN)
        self.vec.resize(n, fill=1.0)
        self.model += [1.0] * (n - len(self.model))

    @invariant()
    def contents_match_model(self):
        if hasattr(self, "vec"):
            assert list(self.vec) == self.model

    def teardown(self):
        if hasattr(self, "dev"):
            self.dev.close()


VectorMachine.TestCase.settings = settings(
    max_examples=25,
    stateful_step_count=25,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
TestVectorLazyCopyProperties = VectorMachine.TestCase
