"""Vector growth reallocation: ledger cause, counter, and trace event."""

from __future__ import annotations

import pytest

from repro import obs
from repro.cuda.runtime import CudaMachine
from repro.cupp import Device
from repro.cupp.vector import Vector
from repro.simgpu.arch import scaled_arch


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


def make_device() -> Device:
    machine = CudaMachine(
        [scaled_arch("vec-realloc", 2, memory_bytes=1 << 26)]
    )
    return Device(machine=machine)


def grow_and_sync(device: Device, steps: int = 64) -> Vector:
    vec = Vector(dtype="float32")
    for i in range(steps):
        vec.push_back(float(i))
        if (i + 1) % 8 == 0:
            vec.transform(device)  # device copy must follow the growth
    return vec


def test_growth_records_vector_realloc_cause():
    device = make_device()
    grow_and_sync(device)
    ledger = obs.get_ledger()
    assert ledger.count_for("vector-realloc") > 0
    assert ledger.bytes_for("vector-realloc") > 0
    # Reallocation re-uploads are genuine host-to-device traffic.
    assert ledger.moved_bytes("h2d") >= ledger.bytes_for("vector-realloc")


def test_growth_increments_realloc_counter():
    device = make_device()
    grow_and_sync(device)
    count = obs.counter("cupp.vector.reallocs").value
    assert count > 0
    assert count == obs.get_ledger().count_for("vector-realloc")


def test_first_upload_is_not_a_realloc():
    device = make_device()
    vec = Vector(dtype="float32")
    for i in range(8):
        vec.push_back(float(i))
    vec.transform(device)
    assert obs.counter("cupp.vector.reallocs").value == 0
    assert obs.get_ledger().count_for("vector-realloc") == 0


def test_resync_without_growth_is_not_a_realloc():
    device = make_device()
    vec = Vector(dtype="float32")
    for i in range(8):
        vec.push_back(float(i))
    vec.transform(device)
    before = obs.counter("cupp.vector.reallocs").value
    vec.transform(device)  # same size: dirty re-upload at most, no realloc
    assert obs.counter("cupp.vector.reallocs").value == before


def test_realloc_emits_trace_instant():
    obs.enable_tracing()
    device = make_device()
    grow_and_sync(device)
    events = [
        e for e in obs.get_tracer().events() if e.name == "vector.realloc"
    ]
    assert events
    assert all(e.args["nbytes"] > 0 for e in events)


def test_pool_absorbs_realloc_churn():
    device = make_device()
    device.enable_pool()
    grow_and_sync(device, steps=256)
    stats = device.pool.stats()
    assert stats.hits > 0
    # Power-of-two growth means each new capacity rebins; once a bin has
    # been visited, later vectors (or the shrinking side of churn) hit it.
    assert stats.hit_rate > 0.0
