"""Isolation for fault tests: fresh global obs state around each."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()
