"""The deterministic fault injector: draws, scripts, attribution."""

from __future__ import annotations

import pytest

from repro import obs
from repro.fault import (
    FAULT_KINDS,
    FAULT_POINTS,
    FaultConfig,
    FaultInjector,
    InjectedFault,
)


class TestFaultConfig:
    def test_default_config_injects_nothing(self):
        assert not FaultConfig().any_enabled

    def test_chaos_mix_splits_the_total_rate(self):
        cfg = FaultConfig.chaos(seed=3, device_fault_rate=0.1)
        assert cfg.launch_fail_rate == pytest.approx(0.04)
        assert cfg.hang_rate == pytest.approx(0.02)
        assert cfg.transfer_corrupt_rate == pytest.approx(0.02)
        assert cfg.spurious_oom_rate == pytest.approx(0.02)
        assert cfg.any_enabled

    def test_rates_summing_past_one_rejected(self):
        with pytest.raises(ValueError, match="exceeds 1"):
            FaultConfig(launch_fail_rate=0.7, hang_rate=0.4)

    def test_unknown_script_point_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultConfig(script={"teleport": ["hang"]})

    def test_script_alone_enables_injection(self):
        assert FaultConfig(script={"launch": ["hang"]}).any_enabled


class TestDraw:
    def test_zero_rates_never_fire_but_count_consults(self):
        inj = FaultInjector(FaultConfig())
        assert all(inj.draw("launch") is None for _ in range(100))
        assert inj.stats.consults == 100
        assert inj.injected == 0

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown consult point"):
            FaultInjector().draw("warp")

    def test_same_seed_same_fault_sequence(self):
        cfg = FaultConfig(seed=11, launch_fail_rate=0.3, hang_rate=0.2)
        one = FaultInjector(cfg)
        two = FaultInjector(cfg)
        assert [one.draw("launch") for _ in range(200)] == [
            two.draw("launch") for _ in range(200)
        ]

    def test_one_uniform_per_consult_regardless_of_rates(self):
        # Same seed, different rates: consult N sees the same uniform,
        # so raising a rate can only add faults at the same positions.
        low = FaultInjector(FaultConfig(seed=5, launch_fail_rate=0.05))
        high = FaultInjector(
            FaultConfig(seed=5, launch_fail_rate=0.05, hang_rate=0.4)
        )
        lows = [low.draw("launch") for _ in range(300)]
        highs = [high.draw("launch") for _ in range(300)]
        for a, b in zip(lows, highs):
            if a == "launch-fail":
                assert b == "launch-fail"

    def test_rates_roughly_respected(self):
        inj = FaultInjector(
            FaultConfig(seed=0, launch_fail_rate=0.2, hang_rate=0.1)
        )
        kinds = [inj.draw("launch") for _ in range(4000)]
        fails = kinds.count("launch-fail") / len(kinds)
        hangs = kinds.count("hang") / len(kinds)
        assert 0.15 < fails < 0.25
        assert 0.07 < hangs < 0.13

    def test_points_only_produce_their_own_kinds(self):
        inj = FaultInjector(
            FaultConfig.chaos(seed=2, device_fault_rate=0.8)
        )
        for point, kinds in FAULT_POINTS.items():
            for _ in range(200):
                got = inj.draw(point)
                assert got is None or got in kinds


class TestScript:
    def test_script_fires_exactly_as_written(self):
        inj = FaultInjector(
            FaultConfig(script={"launch": [None, "hang", "launch-fail"]})
        )
        assert inj.draw("launch") is None
        assert inj.draw("launch") == "hang"
        assert inj.draw("launch") == "launch-fail"
        assert inj.draw("launch") is None  # script exhausted
        assert inj.injected == 2

    def test_script_wrong_point_rejected(self):
        inj = FaultInjector(FaultConfig(script={"alloc": ["hang"]}))
        with pytest.raises(ValueError, match="cannot fire"):
            inj.draw("alloc")

    def test_scripted_point_consumes_no_randomness(self):
        # An unscripted injector and one with a scripted launch point
        # must agree on every *transfer* draw: the script bypasses the
        # RNG entirely.
        plain = FaultInjector(FaultConfig(seed=9, transfer_corrupt_rate=0.3))
        scripted = FaultInjector(
            FaultConfig(
                seed=9,
                transfer_corrupt_rate=0.3,
                script={"launch": ["hang"] * 50},
            )
        )
        out_plain, out_scripted = [], []
        for _ in range(50):
            scripted.draw("launch")
            out_plain.append(plain.draw("transfer"))
            out_scripted.append(scripted.draw("transfer"))
        assert out_plain == out_scripted


class TestAttribution:
    def test_fired_fault_lands_in_counters_and_ledger(self):
        inj = FaultInjector(FaultConfig(script={"transfer": ["transfer-corrupt"]}))
        inj.draw("transfer", device_index=1, nbytes=4096)
        assert obs.counter("fault.injected", kind="transfer-corrupt").value == 1
        led = obs.get_ledger().snapshot()
        assert led["count_by_cause"]["fault-inject"] == 1
        assert led["bytes_by_cause"]["fault-inject"] == 4096
        # Injection attribution never claims bus bytes moved.
        assert led["moved_bytes_by_direction"]["none"] == 0

    def test_listener_sees_kind_point_device(self):
        seen = []
        inj = FaultInjector(FaultConfig(script={"launch": ["hang"]}))
        inj.listener = lambda kind, point, dev: seen.append((kind, point, dev))
        inj.draw("launch", device_index=3)
        assert seen == [("hang", "launch", 3)]

    def test_stats_to_dict_round_trip(self):
        inj = FaultInjector(
            FaultConfig(script={"launch": ["hang", "launch-fail", "hang"]})
        )
        for _ in range(3):
            inj.draw("launch")
        d = inj.stats.to_dict()
        assert d["consults"] == 3
        assert d["injected"] == 3
        assert d["by_kind"]["hang"] == 2
        assert set(d["by_kind"]) == set(FAULT_KINDS)


class TestInjectedFault:
    def test_carries_kind_and_device(self):
        exc = InjectedFault("oom", 2)
        assert exc.kind == "oom"
        assert exc.device_index == 2
        assert "oom" in str(exc)
