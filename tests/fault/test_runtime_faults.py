"""Injected faults at the ``cuda.runtime`` consult points.

Scripted :class:`~repro.fault.FaultConfig` entries drive each hook
deterministically: ``cudaMalloc`` (spurious OOM), ``cudaMemcpy``
(uncorrectable ECC), and ``cudaLaunch`` (transient failure / hang).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuda import (
    CudaMachine,
    CudaRuntime,
    cudaError,
    cudaMemcpyKind,
    global_,
)
from repro.cupp.exceptions import CuppMemoryError, check
from repro.fault import FaultConfig, FaultInjector
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost


@pytest.fixture
def rt() -> CudaRuntime:
    return CudaRuntime(CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)]))


def inject(rt: CudaRuntime, **script) -> FaultInjector:
    injector = FaultInjector(FaultConfig(script=script))
    rt.device.fault_injector = injector
    return injector


@global_
def double_kernel(ctx, arr):
    i = ctx.global_thread_id
    v = yield ld(arr, i)
    yield op(OpClass.FMUL)
    yield st(arr, i, v * 2.0)


class TestAllocPoint:
    def test_spurious_oom_returns_allocation_error(self, rt):
        inject(rt, alloc=["spurious-oom", None])
        err, ptr = rt.cudaMalloc(256)
        assert err is cudaError.cudaErrorMemoryAllocation
        assert ptr is None
        # The very next call succeeds: the OOM was transient, memory
        # was never actually exhausted.
        err, ptr = rt.cudaMalloc(256)
        assert err.ok and ptr is not None

    def test_no_injector_means_no_consults(self, rt):
        err, ptr = rt.cudaMalloc(256)
        assert err.ok
        assert rt.device.fault_injector is None


class TestTransferPoint:
    def test_corrupt_copy_reports_ecc_and_moves_nothing(self, rt):
        err, ptr = rt.cudaMalloc(64)
        data = np.arange(16, dtype=np.float32)
        assert rt.cudaMemcpy(ptr, data, data.nbytes, H2D).ok

        inject(rt, transfer=["transfer-corrupt"])
        poisoned = np.full(16, 7.0, dtype=np.float32)
        err = rt.cudaMemcpy(ptr, poisoned, poisoned.nbytes, H2D)
        assert err is cudaError.cudaErrorECCUncorrectable
        # Device contents are unchanged: the poisoned payload was
        # discarded even though the bus time was charged.
        back = np.zeros_like(data)
        assert rt.cudaMemcpy(back, ptr, data.nbytes, D2H).ok
        np.testing.assert_array_equal(back, data)

    def test_corrupt_copy_still_charges_bus_time(self, rt):
        err, ptr = rt.cudaMalloc(1 << 16)
        inject(rt, transfer=["transfer-corrupt"])
        before = rt.device.timeline.host_time
        rt.cudaMemcpy(ptr, np.zeros(1 << 14, np.float32), 1 << 16, H2D)
        assert rt.device.timeline.host_time > before

    def test_ecc_error_maps_to_memory_error(self):
        with pytest.raises(CuppMemoryError, match="ECC"):
            check(cudaError.cudaErrorECCUncorrectable, "fetch")

    def test_host_to_host_copies_are_not_consulted(self, rt):
        injector = inject(rt, transfer=["transfer-corrupt"])
        src = np.arange(8, dtype=np.float32)
        dst = np.zeros_like(src)
        assert rt.cudaMemcpy(dst, src, src.nbytes,
                             cudaMemcpyKind.cudaMemcpyHostToHost).ok
        np.testing.assert_array_equal(dst, src)
        assert injector.stats.consults == 0


class TestLaunchPoint:
    def _configured(self, rt, n=32):
        from repro.simgpu.memory import DeviceArrayView

        _, ptr = rt.cudaMalloc(4 * n)
        arr = DeviceArrayView(rt.device.memory, ptr, np.dtype(np.float32), n)
        rt.cudaMemcpy(arr.ptr, np.ones(n, np.float32), 4 * n, H2D)
        rt.cudaConfigureCall(1, n)
        rt.cudaSetupArgument(arr, 0, size=8)
        return arr

    def test_launch_fail_is_synchronous_and_transient(self, rt):
        arr = self._configured(rt)
        inject(rt, launch=["launch-fail"])
        assert rt.cudaLaunch(double_kernel) is cudaError.cudaErrorLaunchFailure
        # Nothing ran: the data is untouched and a clean retry works.
        rt.cudaConfigureCall(1, 32)
        rt.cudaSetupArgument(arr, 0, size=8)
        assert rt.cudaLaunch(double_kernel).ok
        back = np.zeros(32, np.float32)
        rt.cudaMemcpy(back, arr.ptr, 4 * 32, D2H)
        np.testing.assert_array_equal(back, np.full(32, 2.0, np.float32))

    def test_hang_wedges_the_device_timeline(self, rt):
        self._configured(rt)
        injector = inject(rt, launch=["hang"])
        busy_before = rt.device.timeline.device_busy_until
        assert rt.cudaLaunch(double_kernel) is cudaError.cudaErrorLaunchFailure
        wedged = rt.device.timeline.device_busy_until - busy_before
        assert wedged >= injector.config.hang_latency_s

    def test_unscripted_launch_unaffected(self, rt):
        self._configured(rt)
        inject(rt, launch=[None])
        assert rt.cudaLaunch(double_kernel).ok
