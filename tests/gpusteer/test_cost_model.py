"""Closed-form kernel cost model vs the emulator's measured profiles.

The benchmark harness trusts these formulas at paper scale; here they are
held to the emulator's accounting on emulable populations.  Tolerances
cover the documented sparse-divergence approximation.
"""

import numpy as np
import pytest

from repro.cupp import Device, Kernel, Vector
from repro.gpusteer import (
    LaunchGeometry,
    MAX_NEIGHBORS,
    WorkloadStats,
    find_neighbors_v1,
    find_neighbors_v2,
    neighbor_v1_cost,
    neighbor_v2_cost,
    simulate_cost,
    simulate_v3,
    simulate_v4,
)
from repro.simgpu import G80_COSTS
from repro.steer import BoidsParams

PARAMS = BoidsParams()
N = 64
TPB = 32


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(99)
    return rng.uniform(-14, 14, size=(N, 3)).astype(np.float32)


@pytest.fixture(scope="module")
def stats(cloud):
    return WorkloadStats.measure(cloud.astype(np.float64), PARAMS)


def launch_neighbors(kernel_fn, cloud):
    dev = Device()
    pos = Vector(cloud.reshape(-1), dtype=np.float32)
    res = Vector(np.full(MAX_NEIGHBORS * N, -1, np.int32), dtype=np.int32)
    Kernel(kernel_fn, N // TPB, TPB)(dev, pos, PARAMS.search_radius, res)
    return dev.runtime.last_launch.profile


def launch_simulate(kernel_fn, cloud):
    dev = Device()
    rng = np.random.default_rng(1)
    fwd = rng.normal(size=(N, 3))
    fwd /= np.linalg.norm(fwd, axis=1, keepdims=True)
    pos = Vector(cloud.reshape(-1), dtype=np.float32)
    fwd_v = Vector(fwd.astype(np.float32).reshape(-1), dtype=np.float32)
    steer = Vector(np.zeros(3 * N, np.float32), dtype=np.float32)
    Kernel(kernel_fn, N // TPB, TPB)(
        dev,
        pos,
        fwd_v,
        PARAMS.search_radius,
        PARAMS.separation_weight,
        PARAMS.alignment_weight,
        PARAMS.cohesion_weight,
        steer,
    )
    return dev.runtime.last_launch.profile


def assert_close(model_value, measured_value, rel, label):
    assert measured_value > 0, f"{label}: emulator measured nothing"
    ratio = model_value / measured_value
    assert (1 - rel) <= ratio <= (1 + rel), (
        f"{label}: model {model_value} vs measured {measured_value} "
        f"(ratio {ratio:.3f}, allowed ±{rel:.0%})"
    )


GEOM = LaunchGeometry(N, TPB)


class TestNeighborV1Model:
    def test_issue_cycles(self, cloud, stats):
        profile = launch_neighbors(find_neighbors_v1, cloud)
        model = neighbor_v1_cost(GEOM, stats)
        assert_close(
            model.issue_cycles, profile.issue_cycles(G80_COSTS), 0.15, "v1 issue"
        )

    def test_bytes_moved(self, cloud, stats):
        profile = launch_neighbors(find_neighbors_v1, cloud)
        model = neighbor_v1_cost(GEOM, stats)
        measured = profile.bytes_read + profile.bytes_written
        assert_close(model.bytes_moved, measured, 0.15, "v1 bytes")

    def test_global_reads(self, cloud, stats):
        profile = launch_neighbors(find_neighbors_v1, cloud)
        model = neighbor_v1_cost(GEOM, stats)
        assert_close(model.global_reads, profile.global_reads, 0.15, "v1 reads")


class TestNeighborV2Model:
    def test_issue_cycles(self, cloud, stats):
        profile = launch_neighbors(find_neighbors_v2, cloud)
        model = neighbor_v2_cost(GEOM, stats)
        assert_close(
            model.issue_cycles, profile.issue_cycles(G80_COSTS), 0.20, "v2 issue"
        )

    def test_bytes_moved(self, cloud, stats):
        profile = launch_neighbors(find_neighbors_v2, cloud)
        model = neighbor_v2_cost(GEOM, stats)
        measured = profile.bytes_read + profile.bytes_written
        assert_close(model.bytes_moved, measured, 0.20, "v2 bytes")

    def test_v1_v2_traffic_ratio_preserved(self, cloud, stats):
        # The model must reproduce the headline: tiling slashes traffic.
        p1 = launch_neighbors(find_neighbors_v1, cloud)
        p2 = launch_neighbors(find_neighbors_v2, cloud)
        m1 = neighbor_v1_cost(GEOM, stats)
        m2 = neighbor_v2_cost(GEOM, stats)
        measured_ratio = (p1.bytes_read + p1.bytes_written) / (
            p2.bytes_read + p2.bytes_written
        )
        model_ratio = m1.bytes_moved / m2.bytes_moved
        assert model_ratio == pytest.approx(measured_ratio, rel=0.25)


class TestSimulateModel:
    @pytest.mark.parametrize(
        "kernel_fn,cache", [(simulate_v3, True), (simulate_v4, False)]
    )
    def test_issue_cycles(self, kernel_fn, cache, cloud, stats):
        profile = launch_simulate(kernel_fn, cloud)
        model = simulate_cost(GEOM, stats, local_cache=cache)
        assert_close(
            model.issue_cycles,
            profile.issue_cycles(G80_COSTS),
            0.25,
            f"simulate cache={cache} issue",
        )

    @pytest.mark.parametrize(
        "kernel_fn,cache", [(simulate_v3, True), (simulate_v4, False)]
    )
    def test_bytes_moved(self, kernel_fn, cache, cloud, stats):
        profile = launch_simulate(kernel_fn, cloud)
        model = simulate_cost(GEOM, stats, local_cache=cache)
        measured = profile.bytes_read + profile.bytes_written
        assert_close(
            model.bytes_moved, measured, 0.30, f"simulate cache={cache} bytes"
        )

    def test_model_orders_v3_above_v4(self, stats):
        m3 = simulate_cost(GEOM, stats, local_cache=True)
        m4 = simulate_cost(GEOM, stats, local_cache=False)
        assert m3.bytes_moved > m4.bytes_moved


class TestWorkloadStats:
    def test_measure_counts_in_radius_pairs(self):
        # Four agents on a line, radius covers only adjacent pairs.
        pos = np.array([[0, 0, 0], [5, 0, 0], [10, 0, 0], [100, 0, 0]], float)
        s = WorkloadStats.measure(pos, BoidsParams(search_radius=6.0))
        # agent0<->1, 1<->2 in radius: counts = [1, 2, 1, 0] -> mean 1.0
        assert s.in_radius_per_agent == pytest.approx(1.0)
        assert s.full_insert_fraction == 0.0

    def test_full_fraction_rises_with_density(self):
        rng = np.random.default_rng(2)
        sparse = WorkloadStats.measure(
            rng.uniform(-50, 50, (256, 3)), BoidsParams()
        )
        dense = WorkloadStats.measure(
            rng.uniform(-5, 5, (256, 3)), BoidsParams()
        )
        assert dense.in_radius_per_agent > sparse.in_radius_per_agent
        assert dense.full_insert_fraction > sparse.full_insert_fraction

    def test_estimate_scales_with_population(self):
        a = WorkloadStats.estimate(1024, PARAMS)
        b = WorkloadStats.estimate(4096, PARAMS)
        assert b.in_radius_per_agent > a.in_radius_per_agent

    def test_estimate_caps_at_population(self):
        s = WorkloadStats.estimate(8, BoidsParams(search_radius=1000))
        assert s.in_radius_per_agent <= 7
