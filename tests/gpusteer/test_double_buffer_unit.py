"""double_buffer.simulate_frames unit behaviour (beyond the Fig 6.4 bench)."""

import pytest

from repro.gpusteer.double_buffer import FrameTimings, compare, simulate_frames
from repro.steer import DEFAULT_PARAMS


class TestSimulateFrames:
    def test_steady_state_stable_across_frame_counts(self):
        a = simulate_frames(4096, DEFAULT_PARAMS, double_buffered=True, frames=10)
        b = simulate_frames(4096, DEFAULT_PARAMS, double_buffered=True, frames=20)
        assert a == pytest.approx(b, rel=0.05)

    def test_serial_frame_is_sum_of_parts(self):
        from repro.bench.calibration import DEFAULT_CALIBRATION
        from repro.gpusteer import update_time

        n = 4096
        calib = DEFAULT_CALIBRATION
        period = simulate_frames(n, DEFAULT_PARAMS, double_buffered=False)
        update = update_time(5, n, DEFAULT_PARAMS, calib=calib).total_s
        draw = calib.cpu_model().draw_seconds(n)
        # Serial frame >= update + draw (plus transfer/launch overheads).
        assert period >= update + draw
        assert period <= (update + draw) * 1.2

    def test_earlier_versions_also_benefit(self):
        # Double buffering helps any version whose GPU part can overlap.
        t = compare(8192, DEFAULT_PARAMS, version=4)
        assert isinstance(t, FrameTimings)
        assert t.improvement > 0.0

    def test_frame_timings_properties(self):
        t = FrameTimings(n=1, frame_without_s=0.02, frame_with_s=0.016)
        assert t.fps_without == pytest.approx(50.0)
        assert t.fps_with == pytest.approx(62.5)
        assert t.improvement == pytest.approx(0.25)

    def test_frame_timings_reject_non_positive_periods(self):
        with pytest.raises(ValueError, match="positive"):
            FrameTimings(n=1, frame_without_s=0.0, frame_with_s=0.016)
        with pytest.raises(ValueError, match="positive"):
            FrameTimings(n=1, frame_without_s=0.02, frame_with_s=-1.0)


class TestSmallFrameCounts:
    """Regression: the steady-state window used to compute a period of
    0.0 at ``frames=1`` (ZeroDivisionError downstream via
    ``FrameTimings``) because the tail window was empty."""

    @pytest.mark.parametrize("frames", [1, 2, 3, 4])
    @pytest.mark.parametrize("double_buffered", [False, True])
    def test_tiny_frame_counts_yield_positive_periods(
        self, frames, double_buffered
    ):
        period = simulate_frames(
            4096,
            DEFAULT_PARAMS,
            double_buffered=double_buffered,
            frames=frames,
        )
        assert period > 0.0

    @pytest.mark.parametrize("frames", [1, 2, 3, 4])
    def test_tiny_frame_counts_build_frame_timings(self, frames):
        t = FrameTimings(
            n=4096,
            frame_without_s=simulate_frames(
                4096, DEFAULT_PARAMS, double_buffered=False, frames=frames
            ),
            frame_with_s=simulate_frames(
                4096, DEFAULT_PARAMS, double_buffered=True, frames=frames
            ),
        )
        assert t.fps_with > 0.0 and t.fps_without > 0.0

    def test_zero_frames_is_a_clear_error(self):
        with pytest.raises(ValueError, match="frames must be >= 1"):
            simulate_frames(
                4096, DEFAULT_PARAMS, double_buffered=True, frames=0
            )

    def test_small_counts_approach_the_steady_state(self):
        # frames=1 includes warm-up; by 4 frames the window is within a
        # few percent of the long-run steady state.
        long_run = simulate_frames(
            4096, DEFAULT_PARAMS, double_buffered=True, frames=24
        )
        four = simulate_frames(
            4096, DEFAULT_PARAMS, double_buffered=True, frames=4
        )
        assert four == pytest.approx(long_run, rel=0.05)


class TestVectorStlCompleteness:
    def test_front_back_empty(self):
        import numpy as np

        from repro.cupp import CuppUsageError, Vector

        v = Vector([1, 2, 3], dtype=np.int32)
        assert v.front() == 1
        assert v.back() == 3
        assert not v.empty()
        v.clear()
        assert v.empty()
        with pytest.raises(CuppUsageError):
            v.front()
        with pytest.raises(CuppUsageError):
            v.back()

    def test_swap(self):
        import numpy as np

        from repro.cupp import Vector

        a = Vector([1, 2], dtype=np.int32)
        b = Vector([9], dtype=np.int32)
        a.swap(b)
        assert list(a) == [9]
        assert list(b) == [1, 2]

    def test_swap_preserves_device_state(self):
        import numpy as np

        from repro.cuda import CudaMachine
        from repro.cupp import Device, Vector
        from repro.simgpu import scaled_arch

        dev = Device(
            machine=CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 20)])
        )
        a = Vector(np.ones(8, np.float32))
        b = Vector(np.zeros(4, np.float32))
        a.transform(dev)  # a now has a device copy
        a.swap(b)
        assert b._device_valid and not a._device_valid
        assert b.uploads == 1
