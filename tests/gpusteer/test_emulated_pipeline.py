"""End-to-end emulated pipeline: all versions vs the CPU reference, plus
the transfer behaviour that motivates CuPP's lazy copying."""

import numpy as np
import pytest

from repro.gpusteer import EmulatedBoids
from repro.steer import DEFAULT_PARAMS, ReferenceSimulation

N = 32
STEPS = 3


@pytest.mark.parametrize("version", [1, 2, 3, 4, 5])
class TestVersionCorrectness:
    def test_matches_cpu_reference(self, version):
        eb = EmulatedBoids(N, version=version, seed=42)
        ref = ReferenceSimulation(N, DEFAULT_PARAMS, seed=42)
        for _ in range(STEPS):
            eb.step()
            ref.update()
        got = eb.snapshot()
        want = ref.state_snapshot()
        # float32 device storage bounds the agreement.
        np.testing.assert_allclose(
            got["positions"], want["positions"], atol=1e-3
        )
        np.testing.assert_allclose(got["forwards"], want["forwards"], atol=1e-3)
        np.testing.assert_allclose(got["speeds"], want["speeds"], atol=1e-3)

    def test_draw_matrices_valid(self, version):
        eb = EmulatedBoids(N, version=version, seed=7)
        eb.step()
        mats = eb.draw_data()
        assert mats.shape == (N, 4, 4)
        rot = mats[:, :3, :3].astype(np.float64)
        eye = np.einsum("nij,nkj->nik", rot, rot)
        np.testing.assert_allclose(
            eye, np.broadcast_to(np.eye(3), (N, 3, 3)), atol=1e-3
        )
        np.testing.assert_allclose(mats[:, 3, 3], 1.0)


class TestVersionsAgree:
    def test_all_versions_produce_the_same_flock(self):
        snaps = []
        for version in (1, 2, 3, 4, 5):
            eb = EmulatedBoids(N, version=version, seed=5)
            for _ in range(2):
                eb.step()
            snaps.append(eb.snapshot()["positions"])
        for other in snaps[1:]:
            np.testing.assert_allclose(snaps[0], other, atol=5e-4)


class TestLazyCopyingBehaviour:
    def test_v5_keeps_state_on_device(self):
        # §6.2.3: "All other data stays on the device" — after the initial
        # upload, agent state never crosses the bus in version 5.
        eb = EmulatedBoids(N, version=5, seed=1)
        for _ in range(4):
            eb.step()
        assert eb.positions.uploads == 1
        assert eb.positions.downloads == 0
        assert eb.forwards.uploads == 1
        assert eb.forwards.downloads == 0
        # Only the draw matrices come back.
        _ = eb.draw_data()
        assert eb.matrices.downloads == 1
        assert eb.positions.downloads == 0

    def test_v1_reuploads_positions_every_step(self):
        # Versions 1/2: the host modification dirties positions, so lazy
        # copying must re-upload them for every neighbor-search launch.
        eb = EmulatedBoids(N, version=1, seed=1)
        for _ in range(3):
            eb.step()
        assert eb.positions.uploads == 3
        # And the results vector comes back each step for host steering.
        assert eb.results.downloads == 3

    def test_v3_uploads_positions_and_forwards(self):
        eb = EmulatedBoids(N, version=3, seed=1)
        for _ in range(2):
            eb.step()
        assert eb.positions.uploads == 2
        assert eb.forwards.uploads == 2
        assert eb.steering.downloads == 2  # host modification reads it

    def test_v5_snapshot_forces_download(self):
        eb = EmulatedBoids(N, version=5, seed=1)
        eb.step()
        _ = eb.snapshot()
        assert eb.positions.downloads == 1


class TestValidation:
    def test_population_must_be_block_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            EmulatedBoids(33, version=5)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            EmulatedBoids(32, version=7)
