"""Grid-accelerated neighbor search (ch. 7 future work, implemented)."""

import numpy as np
import pytest

from repro.cupp import Device, Kernel, Vector
from repro.gpusteer import MAX_NEIGHBORS, find_neighbors_v2
from repro.gpusteer.grid_search import DeviceGrid, HostGrid, find_neighbors_grid
from repro.steer import BoidsParams, Vec3, neighbor_search_all_pure

PARAMS = BoidsParams()
N = 64
TPB = 32


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(31)
    return rng.uniform(-45, 45, size=(N, 3)).astype(np.float32)


def run_grid_n(cloud, n, params=PARAMS):
    dev = Device()
    grid = HostGrid(params.world_radius, params.search_radius)
    grid.build(cloud.astype(np.float64))
    pos = Vector(cloud.reshape(-1), dtype=np.float32)
    res = Vector(np.full(MAX_NEIGHBORS * n, -1, np.int32), dtype=np.int32)
    Kernel(find_neighbors_grid, n // TPB, TPB)(
        dev, grid, pos, params.search_radius, res
    )
    return (
        res.to_numpy().reshape(n, MAX_NEIGHBORS),
        dev.runtime.last_launch.profile,
    )


def run_brute_n(cloud, n, params=PARAMS):
    dev = Device()
    pos = Vector(cloud.reshape(-1), dtype=np.float32)
    res = Vector(np.full(MAX_NEIGHBORS * n, -1, np.int32), dtype=np.int32)
    Kernel(find_neighbors_v2, n // TPB, TPB)(
        dev, pos, params.search_radius, res
    )
    return (
        res.to_numpy().reshape(n, MAX_NEIGHBORS),
        dev.runtime.last_launch.profile,
    )


def run_grid(cloud, params=PARAMS):
    return run_grid_n(cloud, N, params)


def run_brute(cloud, params=PARAMS):
    return run_brute_n(cloud, N, params)


class TestHostGrid:
    def test_build_partitions_all_agents(self, cloud):
        grid = HostGrid(PARAMS.world_radius, PARAMS.search_radius)
        grid.build(cloud.astype(np.float64))
        assert grid._members.size == N
        assert grid._starts[0] == 0
        assert grid._starts[-1] == N
        assert sorted(grid._members.tolist()) == list(range(N))

    def test_cell_edge_at_least_search_radius(self):
        grid = HostGrid(50.0, 9.0)
        assert grid.cell_edge >= 9.0

    def test_no_point_clamped(self, cloud):
        grid = HostGrid(PARAMS.world_radius, PARAMS.search_radius)
        ijk = grid.cell_coords(cloud.astype(np.float64))
        # Interior mapping: nothing pinned to the clamp boundaries by
        # actually lying outside the extent.
        assert (np.abs(cloud) < grid.extent).all()
        assert (ijk >= 0).all() and (ijk < grid.cells_per_axis).all()

    def test_type_binding_is_1_to_1(self):
        from repro.cupp import validate_binding

        validate_binding(HostGrid)
        validate_binding(DeviceGrid)


class TestGridKernel:
    def test_matches_brute_force_exactly(self, cloud):
        got, _ = run_grid(cloud)
        want, _ = run_brute(cloud)
        np.testing.assert_array_equal(got, want)

    def test_matches_pure_reference(self, cloud):
        got, _ = run_grid(cloud)
        pv = [Vec3.from_tuple(p.astype(np.float64)) for p in cloud]
        want = neighbor_search_all_pure(pv, PARAMS)
        for i in range(N):
            assert set(got[i]) == set(want[i])

    def test_tests_fewer_candidates(self, cloud):
        # 27 cells instead of all n agents; at a tiny emulable population
        # the fixed 27-cell overhead dilutes the win, but it must show.
        _, p_grid = run_grid(cloud)
        _, p_brute = run_brute(cloud)
        from repro.simgpu.costs import OpClass

        grid_tests = p_grid.op_counts[OpClass.FMAD]  # distance calcs
        brute_tests = p_brute.op_counts[OpClass.FMAD]
        assert grid_tests * 2 < brute_tests
        assert p_grid.total_instructions < p_brute.total_instructions

    def test_faster_in_modelled_time_at_scale(self, cloud):
        """ch. 7's claim quantified: extrapolate emulator counts to 4096
        agents and compare against the brute-force v2 cost model."""
        from repro.gpusteer import LaunchGeometry, WorkloadStats, neighbor_v2_cost
        from repro.gpusteer.grid_search import project_cost
        from repro.simgpu import kernel_time

        rng = np.random.default_rng(8)
        small = rng.uniform(-45, 45, size=(32, 3)).astype(np.float32)
        # Same box, double the population (density scales with n).
        _, p_small = run_grid_n(small, 32)
        _, p_big = run_grid_n(cloud, N)

        n_target = 4096
        grid_inputs = project_cost(p_small, p_big, 32, N, n_target, 128)
        stats = WorkloadStats.estimate(n_target, PARAMS)
        brute_inputs = neighbor_v2_cost(LaunchGeometry(n_target, 128), stats)
        t_grid = kernel_time(grid_inputs).total_s
        t_brute = kernel_time(brute_inputs).total_s
        assert t_grid < t_brute, (
            f"grid {t_grid*1e3:.2f}ms vs brute {t_brute*1e3:.2f}ms at "
            f"{n_target} agents"
        )

    def test_growth_rate_below_brute_force(self):
        # Doubling the population (same world) must grow the grid kernel's
        # instruction count strictly slower than the brute-force kernel's.
        rng = np.random.default_rng(8)
        small = rng.uniform(-45, 45, size=(32, 3)).astype(np.float32)
        big = rng.uniform(-45, 45, size=(64, 3)).astype(np.float32)
        _, g_small = run_grid_n(small, 32)
        _, g_big = run_grid_n(big, 64)
        _, b_small = run_brute_n(small, 32)
        _, b_big = run_brute_n(big, 64)
        grid_growth = g_big.total_instructions / g_small.total_instructions
        brute_growth = b_big.total_instructions / b_small.total_instructions
        assert grid_growth < brute_growth

    def test_dense_cluster_still_correct(self):
        rng = np.random.default_rng(5)
        tight = rng.uniform(-6, 6, size=(N, 3)).astype(np.float32)
        got, _ = run_grid(tight)
        pv = [Vec3.from_tuple(p.astype(np.float64)) for p in tight]
        want = neighbor_search_all_pure(pv, PARAMS)
        for i in range(N):
            assert set(got[i]) == set(want[i])
