"""Device kernels: correctness against the pure reference + the memory
behaviour the paper's version story hinges on."""

import numpy as np
import pytest

from repro.cupp import Device, Kernel, Vector
from repro.gpusteer import (
    MAX_NEIGHBORS,
    find_neighbors_v1,
    find_neighbors_v2,
    simulate_v3,
    simulate_v4,
)
from repro.steer import (
    BoidsParams,
    Vec3,
    flocking_pure,
    neighbor_search_all_pure,
)

PARAMS = BoidsParams()
N = 64
TPB = 32


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(123)
    # A moderately dense cloud so the insert/replace paths all run.
    positions = rng.uniform(-12, 12, size=(N, 3)).astype(np.float32)
    forwards = rng.normal(size=(N, 3))
    forwards /= np.linalg.norm(forwards, axis=1, keepdims=True)
    return positions, forwards.astype(np.float32)


def run_neighbors(kernel_fn, positions):
    dev = Device()
    pos_vec = Vector(positions.reshape(-1), dtype=np.float32)
    res_vec = Vector(np.full(MAX_NEIGHBORS * N, -1, np.int32), dtype=np.int32)
    k = Kernel(kernel_fn, N // TPB, TPB)
    k(dev, pos_vec, PARAMS.search_radius, res_vec)
    result = res_vec.to_numpy().reshape(N, MAX_NEIGHBORS)
    return result, dev.runtime.last_launch.profile


def reference_neighbors(positions):
    pv = [Vec3.from_tuple(p.astype(np.float64)) for p in positions]
    return neighbor_search_all_pure(pv, PARAMS)


class TestNeighborKernels:
    @pytest.mark.parametrize(
        "kernel_fn", [find_neighbors_v1, find_neighbors_v2]
    )
    def test_matches_reference(self, kernel_fn, cloud):
        positions, _ = cloud
        got, _profile = run_neighbors(kernel_fn, positions)
        want = reference_neighbors(positions)
        for i in range(N):
            assert set(got[i]) == set(want[i]), f"agent {i}"

    def test_v1_and_v2_agree(self, cloud):
        positions, _ = cloud
        a, _ = run_neighbors(find_neighbors_v1, positions)
        b, _ = run_neighbors(find_neighbors_v2, positions)
        np.testing.assert_array_equal(a, b)

    def test_v2_moves_a_fraction_of_v1_traffic(self, cloud):
        # §6.2.1: shared memory cuts global reads per block from
        # threads_per_block * n to n — the 3.3x version-2 speedup.
        positions, _ = cloud
        _, p1 = run_neighbors(find_neighbors_v1, positions)
        _, p2 = run_neighbors(find_neighbors_v2, positions)
        assert p2.bytes_read * 10 < p1.bytes_read
        assert p2.shared_accesses > 0
        assert p1.shared_accesses == 0

    def test_v2_uses_barriers(self, cloud):
        positions, _ = cloud
        _, p2 = run_neighbors(find_neighbors_v2, positions)
        # Two barriers per tile per warp (listing 6.2) — at least; warps
        # that diverged in the insert path arrive at the barrier in
        # several serialized groups, each a counted arrival.
        tiles = N // TPB
        warps = N // 32
        assert p2.sync_count >= 2 * tiles * warps

    def test_neighbor_search_diverges(self, cloud):
        # §6.3.1: the in-radius insert path makes warps diverge.
        positions, _ = cloud
        _, p = run_neighbors(find_neighbors_v2, positions)
        assert p.divergent_rounds > 0

    def test_empty_radius_finds_nothing(self):
        spread = (np.arange(N * 3, dtype=np.float32) * 100).reshape(N, 3)
        got, _ = run_neighbors(find_neighbors_v2, spread)
        assert (got == -1).all()


def run_simulate(kernel_fn, positions, forwards):
    dev = Device()
    pos_vec = Vector(positions.reshape(-1), dtype=np.float32)
    fwd_vec = Vector(forwards.reshape(-1), dtype=np.float32)
    steer_vec = Vector(np.zeros(3 * N, np.float32), dtype=np.float32)
    k = Kernel(kernel_fn, N // TPB, TPB)
    k(
        dev,
        pos_vec,
        fwd_vec,
        PARAMS.search_radius,
        PARAMS.separation_weight,
        PARAMS.alignment_weight,
        PARAMS.cohesion_weight,
        steer_vec,
    )
    return (
        steer_vec.to_numpy().reshape(N, 3),
        dev.runtime.last_launch.profile,
    )


class TestSimulateKernels:
    @pytest.mark.parametrize("kernel_fn", [simulate_v3, simulate_v4])
    def test_steering_matches_reference(self, kernel_fn, cloud):
        positions, forwards = cloud
        got, _ = run_simulate(kernel_fn, positions, forwards)
        pv = [Vec3.from_tuple(p.astype(np.float64)) for p in positions]
        fv = [Vec3.from_tuple(f.astype(np.float64)) for f in forwards]
        neighbors = neighbor_search_all_pure(pv, PARAMS)
        for i in range(N):
            want = flocking_pure(i, pv, fv, list(neighbors[i]), PARAMS)
            assert np.allclose(
                got[i], want.as_tuple(), atol=2e-4
            ), f"agent {i}: {got[i]} vs {want.as_tuple()}"

    def test_v3_and_v4_agree_numerically(self, cloud):
        positions, forwards = cloud
        a, _ = run_simulate(simulate_v3, positions, forwards)
        b, _ = run_simulate(simulate_v4, positions, forwards)
        np.testing.assert_allclose(a, b, atol=2e-4)

    def test_v3_spills_to_device_memory(self, cloud):
        # §6.2.2: v3's local-memory cache lives in device memory; v4
        # recomputes and moves fewer bytes — why v4 won on the G80.
        positions, forwards = cloud
        _, p3 = run_simulate(simulate_v3, positions, forwards)
        _, p4 = run_simulate(simulate_v4, positions, forwards)
        assert p3.global_writes > p4.global_writes
        assert p3.bytes_written > p4.bytes_written
        assert p3.bytes_read + p3.bytes_written > p4.bytes_read + p4.bytes_written
