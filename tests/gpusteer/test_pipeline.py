"""Paper-scale pipeline: GpuBoidsRun and version_ladder."""

import numpy as np
import pytest

from repro.gpusteer import GpuBoidsRun, version_ladder
from repro.gpusteer.cost_model import WorkloadStats
from repro.steer import DEFAULT_PARAMS, THINK_FREQ_PARAMS


class TestGpuBoidsRun:
    def test_run_advances_the_flock_and_models_timing(self):
        run = GpuBoidsRun(512, version=5, seed=2)
        start = run.sim.positions.copy()
        result = run.run(steps=4)
        assert result.version == 5
        assert result.n == 512
        assert result.updates_per_second > 0
        assert not np.allclose(result.final_positions, start)

    def test_measured_stats_come_from_the_live_flock(self):
        run = GpuBoidsRun(512, version=5, seed=2)
        result = run.run(steps=4, measure_stats=True)
        assert isinstance(result.stats, WorkloadStats)
        assert result.stats.n == 512
        assert result.stats.in_radius_per_agent >= 0

    def test_estimated_stats_path(self):
        run = GpuBoidsRun(512, version=5, seed=2)
        result = run.run(steps=1, measure_stats=False)
        est = WorkloadStats.estimate(512, DEFAULT_PARAMS)
        assert result.stats == est

    def test_think_frequency_raises_update_rate(self):
        fast = GpuBoidsRun(2048, version=5, params=THINK_FREQ_PARAMS, seed=3)
        slow = GpuBoidsRun(2048, version=5, params=DEFAULT_PARAMS, seed=3)
        r_fast = fast.run(steps=2)
        r_slow = slow.run(steps=2)
        assert r_fast.updates_per_second >= r_slow.updates_per_second

    def test_breakdown_fields_are_consistent(self):
        result = GpuBoidsRun(512, version=3, seed=1).run(steps=2)
        b = result.update_breakdown
        assert b.total_s == pytest.approx(
            b.host_compute_s + b.gpu_kernel_s + b.transfer_s + b.launch_overhead_s
        )
        assert result.updates_per_second == pytest.approx(1 / b.total_s)


class TestVersionLadder:
    @pytest.fixture(scope="class")
    def ladder(self):
        return version_ladder(n=1024, steps=3, seed=4)

    def test_all_six_versions_present(self, ladder):
        assert set(ladder) == set(range(6))

    def test_shared_flock_statistics(self, ladder):
        # Every version is modelled on the same measured flock.
        stats = {id(ladder[v].stats) for v in range(6)}
        assert len(stats) == 1

    def test_monotone_at_this_population_too(self, ladder):
        rates = [ladder[v].updates_per_second for v in range(6)]
        assert rates == sorted(rates)

    def test_cpu_baseline_matches_cpu_model(self, ladder):
        from repro.bench.calibration import DEFAULT_CALIBRATION

        cpu = DEFAULT_CALIBRATION.cpu_model()
        expected = 1.0 / cpu.update_seconds(1024, 1024)
        assert ladder[0].updates_per_second == pytest.approx(expected, rel=1e-9)
