"""The per-version timing model: Table 6.1 semantics and the shapes of
Figs. 6.2 / 6.3 / 6.4."""

import pytest

from repro.gpusteer import (
    VERSIONS,
    compare,
    speedup_vs_cpu,
    update_time,
)
from repro.steer import DEFAULT_PARAMS, THINK_FREQ_PARAMS

#: The paper's Fig. 6.2 anchors at 4096 agents, and the tolerance the
#: reproduction must stay inside (model, not the authors' testbed).
PAPER_SPEEDUPS = {1: 3.9, 2: 12.9, 3: 27.0, 4: 28.8, 5: 42.0}
TOLERANCE = 0.30


class TestTable61:
    def test_feature_matrix(self):
        # Table 6.1 row by row.
        assert not VERSIONS[0].neighbor_on_device
        for v in (1, 2, 3, 4, 5):
            assert VERSIONS[v].neighbor_on_device
        for v in (3, 4, 5):
            assert VERSIONS[v].steering_on_device
        for v in (1, 2):
            assert not VERSIONS[v].steering_on_device
        assert VERSIONS[5].modification_on_device
        for v in (1, 2, 3, 4):
            assert not VERSIONS[v].modification_on_device
        assert not VERSIONS[1].uses_shared_memory
        for v in (2, 3, 4, 5):
            assert VERSIONS[v].uses_shared_memory
        assert VERSIONS[3].local_mem_caching
        assert not VERSIONS[4].local_mem_caching


class TestFig62Ladder:
    @pytest.mark.parametrize("version,paper", sorted(PAPER_SPEEDUPS.items()))
    def test_speedup_within_band(self, version, paper):
        got = speedup_vs_cpu(version, 4096, DEFAULT_PARAMS)
        assert paper * (1 - TOLERANCE) <= got <= paper * (1 + TOLERANCE), (
            f"v{version}: modelled {got:.1f}x vs paper {paper}x"
        )

    def test_ladder_is_monotone(self):
        speeds = [speedup_vs_cpu(v, 4096, DEFAULT_PARAMS) for v in range(6)]
        assert speeds == sorted(speeds)

    def test_v2_over_v1_is_the_shared_memory_factor(self):
        # §6.2.1: "almost a factor of 3.3" on the kernel; on the full
        # update stage the paper reports 12.9/3.9 ≈ 3.3 as well.
        ratio = speedup_vs_cpu(2, 4096, DEFAULT_PARAMS) / speedup_vs_cpu(
            1, 4096, DEFAULT_PARAMS
        )
        assert 2.5 <= ratio <= 4.5

    def test_v4_beats_v3(self):
        # §6.2.2: recomputing beats local-memory caching on the G80.
        assert speedup_vs_cpu(4, 4096, DEFAULT_PARAMS) > speedup_vs_cpu(
            3, 4096, DEFAULT_PARAMS
        )

    def test_v1_is_memory_bound_v2_is_not(self):
        from repro.gpusteer import (
            LaunchGeometry,
            WorkloadStats,
            neighbor_v1_cost,
            neighbor_v2_cost,
        )
        from repro.simgpu import kernel_time

        stats = WorkloadStats.estimate(4096, DEFAULT_PARAMS)
        geom = LaunchGeometry(4096, 128)
        t1 = kernel_time(neighbor_v1_cost(geom, stats))
        t2 = kernel_time(neighbor_v2_cost(geom, stats))
        assert t1.bound_by == "memory"
        assert t2.bound_by == "issue"
        assert 2.0 <= t1.total_s / t2.total_s <= 15.0


class TestFig63Scaling:
    def test_quadratic_without_think_frequency(self):
        # Doubling the population quarters the update rate (O(n^2)).
        r8 = update_time(5, 8192, DEFAULT_PARAMS).updates_per_second
        r16 = update_time(5, 16384, DEFAULT_PARAMS).updates_per_second
        assert 3.0 <= r8 / r16 <= 5.5

    def test_think_frequency_near_linear_to_16384(self):
        # §6.3: "scales linear up to 16384 agents".
        prev = update_time(5, 2048, THINK_FREQ_PARAMS).updates_per_second
        for n in (4096, 8192, 16384):
            cur = update_time(5, n, THINK_FREQ_PARAMS).updates_per_second
            assert prev / cur <= 2.4, f"drop too steep at n={n}"
            prev = cur

    def test_sharp_drop_at_32768(self):
        # §6.3: "the performance is reduced by a factor of about 4.8 when
        # the number of agents is doubled" past 16384.
        r16 = update_time(5, 16384, THINK_FREQ_PARAMS).updates_per_second
        r32 = update_time(5, 32768, THINK_FREQ_PARAMS).updates_per_second
        assert r16 / r32 >= 3.0

    def test_think_frequency_always_helps_at_scale(self):
        for n in (8192, 16384, 32768):
            with_tf = update_time(5, n, THINK_FREQ_PARAMS).updates_per_second
            without = update_time(5, n, DEFAULT_PARAMS).updates_per_second
            assert with_tf > without


class TestFig64DoubleBuffering:
    def test_gains_in_paper_band(self):
        # Fig 6.4: improvements between ~12% and ~32%; we allow the band
        # to breathe a little for the model.
        for n in (4096, 8192, 16384, 32768):
            for params in (DEFAULT_PARAMS, THINK_FREQ_PARAMS):
                t = compare(n, params)
                assert 0.03 <= t.improvement <= 0.40, (
                    f"n={n} tf={params.think_every}: {t.improvement:.1%}"
                )

    def test_peak_at_8192_without_think_frequency(self):
        # §6.3.2: gain peaks "when device and host finish their work at
        # the same time ... 8192 agents without think frequency".
        gains = {
            n: compare(n, DEFAULT_PARAMS).improvement
            for n in (4096, 8192, 16384, 32768)
        }
        assert max(gains, key=gains.get) == 8192

    def test_tf_peak_at_32768(self):
        # "... or 32768 agents with think frequency."
        gains = {
            n: compare(n, THINK_FREQ_PARAMS).improvement
            for n in (4096, 8192, 16384, 32768)
        }
        assert max(gains, key=gains.get) == 32768

    def test_4096_is_draw_bound(self):
        # §6.3.2: at 4096 agents think frequency does not matter — the
        # frame rate is pinned by the draw stage.
        a = compare(4096, DEFAULT_PARAMS)
        b = compare(4096, THINK_FREQ_PARAMS)
        assert a.fps_with == pytest.approx(b.fps_with, rel=0.05)

    def test_double_buffering_never_hurts(self):
        for n in (2048, 4096, 16384):
            t = compare(n, DEFAULT_PARAMS)
            assert t.frame_with_s <= t.frame_without_s * 1.001
