"""The bench layer: report rendering, calibration, harness smoke tests."""

import pytest

from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.bench.report import format_series, format_table


class TestReport:
    def test_table_alignment(self):
        out = format_table(
            "T", ["a", "longheader"], [(1, 2.5), (10, 3.14159)]
        )
        lines = out.splitlines()
        assert lines[0] == "== T =="
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows equally wide

    def test_number_formatting(self):
        out = format_table("T", ["x"], [(123456.0,), (float("nan"),), (1.5,)])
        assert "123,456" in out
        assert "1.500" in out
        assert "-" in out  # NaN placeholder

    def test_note_appended(self):
        out = format_table("T", ["x"], [(1,)], note="hello note")
        assert out.endswith("hello note")

    def test_series_merges_x_values(self):
        out = format_series(
            "S", "n", {"a": {1: 10.0, 2: 20.0}, "b": {2: 5.0, 3: 7.0}}
        )
        assert "n" in out
        # x=1 has no 'b' point -> NaN placeholder appears.
        assert "-" in out

    def test_series_unit_label(self):
        out = format_series("S", "n", {"a": {1: 1.0}}, unit="fps")
        assert "a [fps]" in out


class TestCalibration:
    def test_default_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CALIBRATION.pcie_bandwidth = 1.0

    def test_cpu_model_reflects_constants(self):
        calib = Calibration(cpu_cycles_per_candidate=99.0)
        assert calib.cpu_model().cycles_per_candidate == 99.0

    def test_pcie_model_reflects_constants(self):
        calib = Calibration(pcie_bandwidth=1e9, pcie_call_overhead_s=1e-6)
        t = calib.pcie_model().transfer_time(1_000_000)
        assert t == pytest.approx(1e-6 + 1e-3)

    def test_extract_seconds_scales_linearly(self):
        c = DEFAULT_CALIBRATION
        assert c.extract_seconds(2000) == pytest.approx(
            2 * c.extract_seconds(1000)
        )

    def test_calibration_changes_rescale_not_reorder(self):
        # Halving the CPU constants halves every speedup but cannot change
        # who wins — the ladder ordering is structural.
        from repro.gpusteer import speedup_vs_cpu
        from repro.steer import DEFAULT_PARAMS

        cheap_cpu = Calibration(cpu_cycles_per_candidate=7.5)
        default = [
            speedup_vs_cpu(v, 4096, DEFAULT_PARAMS, calib=DEFAULT_CALIBRATION)
            for v in range(1, 6)
        ]
        rescaled = [
            speedup_vs_cpu(v, 4096, DEFAULT_PARAMS, calib=cheap_cpu)
            for v in range(1, 6)
        ]
        assert default == sorted(default)
        assert rescaled == sorted(rescaled)
        for d, r in zip(default, rescaled):
            assert r < d  # cheaper CPU -> smaller GPU advantage


class TestHarnessSmoke:
    def test_fig_5_6_rows(self):
        from repro.bench.harness import run_fig_5_6

        exp = run_fig_5_6(populations=(256, 512))
        assert len(exp.rows) == 2
        assert "Fig 5.6" in exp.report

    def test_fig_6_2_small_population(self):
        from repro.bench.harness import run_fig_6_2

        exp = run_fig_6_2(n=512, steps=2)
        assert set(exp.data["speedups"]) == set(range(6))

    def test_fig_6_3_estimated_stats_path(self):
        from repro.bench.harness import run_fig_6_3

        exp = run_fig_6_3(populations=(1024, 2048), measure=False)
        assert set(exp.data["without"]) == {1024, 2048}

    def test_sec_7_runs(self):
        from repro.bench.harness import run_sec_7_traits

        exp = run_sec_7_traits(repeats=50)
        assert exp.data["analysis_s"] > 0
