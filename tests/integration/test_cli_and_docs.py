"""The `python -m repro.bench` CLI and repository-wide quality gates."""

import importlib
import pkgutil

import pytest

import repro
from repro.bench.__main__ import EXPERIMENTS, main


class TestBenchCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_single_experiment(self, capsys):
        assert main(["fig-5.6"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5.6" in out
        assert "Fig 6.2" not in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig-9.9"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err

    def test_every_registered_experiment_runs(self, capsys):
        # Skip the slow measured sweep (covered by its benchmark); run
        # the cheap ones end-to-end through the CLI.
        for name in ("fig-1.1", "fig-5.5", "fig-5.6", "fig-6.4"):
            assert main([name]) == 0
        assert capsys.readouterr().out.count("==") >= 8


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


class TestDocumentationGates:
    def test_every_module_has_a_docstring(self):
        undocumented = []
        for name in _walk_modules():
            mod = importlib.import_module(name)
            if not (mod.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"missing module docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        import inspect

        missing = []
        for name in _walk_modules():
            mod = importlib.import_module(name)
            for attr_name, attr in vars(mod).items():
                if attr_name.startswith("_"):
                    continue
                if getattr(attr, "__module__", None) != name:
                    continue  # re-export; documented at home
                if inspect.isclass(attr) or inspect.isfunction(attr):
                    if not (inspect.getdoc(attr) or "").strip():
                        missing.append(f"{name}.{attr_name}")
        assert not missing, f"missing docstrings: {missing}"

    def test_markdown_deliverables_exist(self):
        from pathlib import Path

        root = Path(repro.__file__).resolve().parents[2]
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "PAPER_MAP.md"):
            path = root / doc
            assert path.exists(), f"{doc} missing"
            assert path.stat().st_size > 1000, f"{doc} looks empty"
