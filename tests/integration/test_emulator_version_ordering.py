"""Fig 6.2's qualitative ordering derived from *emulated* kernels.

The paper-scale ladder uses the closed-form cost model; this test closes
the loop the other way: run the actual version kernels on the emulator,
model their times from the *measured* profiles, and check the ordering
the paper reports — v2 beats v1, the gap being memory traffic; and the
gap widens with population (the O(n^2) traffic term).
"""

import numpy as np
import pytest

from repro.cupp import Device, Kernel, Vector
from repro.gpusteer import MAX_NEIGHBORS, find_neighbors_v1, find_neighbors_v2
from repro.simgpu import time_from_profile
from repro.steer import BoidsParams

PARAMS = BoidsParams()
TPB = 32


def kernel_profile(kernel_fn, n, seed=3):
    rng = np.random.default_rng(seed)
    cloud = rng.uniform(-30, 30, size=(n, 3)).astype(np.float32)
    dev = Device()
    pos = Vector(cloud.reshape(-1), dtype=np.float32)
    res = Vector(np.full(MAX_NEIGHBORS * n, -1, np.int32), dtype=np.int32)
    Kernel(kernel_fn, n // TPB, TPB)(dev, pos, PARAMS.search_radius, res)
    launch = dev.runtime.last_launch
    t = time_from_profile(
        launch.profile,
        launch.blocks,
        launch.block_dim.volume,
        shared_bytes_per_block=launch.shared_bytes_per_block,
    )
    return launch.profile, t


class TestEmulatedOrdering:
    def test_v2_beats_v1_from_measured_profiles(self):
        p1, t1 = kernel_profile(find_neighbors_v1, 64)
        p2, t2 = kernel_profile(find_neighbors_v2, 64)
        assert t2.total_s < t1.total_s
        # The gap is memory, not arithmetic: issue cycles are comparable,
        # traffic differs by orders of magnitude (§6.2.1).
        from repro.simgpu import G80_COSTS

        issue_ratio = p1.issue_cycles(G80_COSTS) / p2.issue_cycles(G80_COSTS)
        traffic_ratio = p1.bytes_read / max(p2.bytes_read, 1)
        assert issue_ratio < 2.0
        assert traffic_ratio > 10.0

    def test_v1_gap_grows_with_population(self):
        # v1's traffic is threads x n x 1 KiB; v2's is tiles x 1 KiB per
        # warp — the advantage compounds as n grows.
        ratios = []
        for n in (32, 64, 96):
            _, t1 = kernel_profile(find_neighbors_v1, n)
            _, t2 = kernel_profile(find_neighbors_v2, n)
            ratios.append(t1.total_s / t2.total_s)
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0]

    def test_v1_becomes_memory_bound(self):
        _, t1 = kernel_profile(find_neighbors_v1, 96)
        assert t1.bound_by == "memory"
