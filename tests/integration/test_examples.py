"""Every example script must run to completion (they assert internally)."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3
