"""Failure injection: the system must fail loudly and stay consistent.

Every fault path a downstream user can hit: kernel crashes mid-launch,
device memory exhaustion at each layer, use-after-close, stale bindings.
After every failure the allocator invariants must still hold — a crash
may lose the operation, never the device.
"""

import numpy as np
import pytest

from repro.cuda import CudaMachine, cudaError, global_
from repro.cupp import (
    CuppLaunchError,
    CuppMemoryError,
    CuppUsageError,
    Device,
    DeviceVector,
    Kernel,
    Ref,
    Vector,
)
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st


def tiny_machine(mem=1 << 20):
    return CudaMachine([scaled_arch("t", 2, memory_bytes=mem)])


@global_
def crashing_kernel(ctx, v: Ref[DeviceVector]):
    i = ctx.global_thread_id
    _ = yield ld(v.view, i)
    if i == 7:
        raise RuntimeError("injected fault")
    yield op(OpClass.IADD)


@global_
def local_spill_then_crash(ctx):
    scratch = ctx.local_array("scratch", np.float32, 16)
    yield st(scratch, 0, 1.0)
    raise RuntimeError("injected fault after local alloc")
    yield op(OpClass.IADD)  # pragma: no cover


class TestKernelCrash:
    def test_crash_surfaces_as_launch_error(self):
        dev = Device(machine=tiny_machine())
        v = Vector(np.zeros(32, np.float32))
        with pytest.raises(CuppLaunchError):
            Kernel(crashing_kernel, 1, 32)(dev, v)

    def test_allocator_consistent_after_crash(self):
        dev = Device(machine=tiny_machine())
        v = Vector(np.zeros(32, np.float32))
        try:
            Kernel(crashing_kernel, 1, 32)(dev, v)
        except CuppLaunchError:
            pass
        dev.sim.memory.check_invariants()
        # The device keeps working.
        ptr = dev.alloc(256)
        dev.free(ptr)

    def test_local_memory_released_after_crash(self):
        # The compiler's local-spill allocations must not leak when the
        # kernel dies (the executor frees them in a finally block).
        from repro.cuda import CudaRuntime

        rt = CudaRuntime(tiny_machine())
        before = rt.device.memory.allocation_count
        rt.cudaConfigureCall(1, 4)
        assert rt.cudaLaunch(local_spill_then_crash) is cudaError.cudaErrorLaunchFailure
        assert rt.device.memory.allocation_count == before
        rt.device.memory.check_invariants()

    def test_next_launch_succeeds_after_crash(self):
        dev = Device(machine=tiny_machine())
        v = Vector(np.zeros(32, np.float32))
        with pytest.raises(CuppLaunchError):
            Kernel(crashing_kernel, 1, 32)(dev, v)

        @global_
        def fine(ctx, v: Ref[DeviceVector]):
            i = ctx.global_thread_id
            yield st(v.view, i, float(i))

        Kernel(fine, 1, 32)(dev, v)
        np.testing.assert_array_equal(
            v.to_numpy(), np.arange(32, dtype=np.float32)
        )


class TestMemoryExhaustion:
    def test_vector_upload_oom_raises_cleanly(self):
        dev = Device(machine=tiny_machine(mem=1 << 14))  # 16 KiB device
        huge = Vector(np.zeros(1 << 13, np.float32))  # 32 KiB payload
        with pytest.raises(CuppMemoryError):
            huge.transform(dev)
        dev.sim.memory.check_invariants()

    def test_oom_then_smaller_allocation_works(self):
        dev = Device(machine=tiny_machine(mem=1 << 14))
        with pytest.raises(CuppMemoryError):
            dev.alloc(1 << 20)
        ptr = dev.alloc(1 << 10)
        dev.free(ptr)

    def test_fragmentation_reported_as_oom(self):
        dev = Device(machine=tiny_machine(mem=1 << 14))
        total_free = dev.free_memory
        a = dev.alloc(total_free // 4)
        b = dev.alloc(total_free // 4)
        c = dev.alloc(total_free // 4)
        dev.free(b)  # free space exists, but split in two
        with pytest.raises(CuppMemoryError):
            dev.alloc(total_free // 2)
        dev.sim.memory.check_invariants()


class TestLifetimeMisuse:
    def test_kernel_on_closed_device(self):
        dev = Device(machine=tiny_machine())
        v = Vector(np.zeros(32, np.float32))
        dev.close()

        @global_
        def noop(ctx, v: Ref[DeviceVector]):
            yield op(OpClass.IADD)

        with pytest.raises(CuppUsageError):
            Kernel(noop, 1, 32)(dev, v)

    def test_vector_survives_its_device(self):
        # Closing the device reclaims the vector's device block; the host
        # data remains usable (it was valid when the device vanished).
        dev = Device(machine=tiny_machine())
        v = Vector(np.arange(8, dtype=np.float32))
        v.transform(dev)
        host_copy = v.to_numpy()
        dev.close()
        np.testing.assert_array_equal(v.to_numpy(), host_copy)

    def test_memcpy_into_freed_block_fails_not_corrupts(self):
        dev = Device(machine=tiny_machine())
        ptr = dev.alloc(64)
        dev.free(ptr)
        with pytest.raises(CuppMemoryError):
            dev.upload(ptr, np.zeros(16, np.float32))
        dev.sim.memory.check_invariants()
