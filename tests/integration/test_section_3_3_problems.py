"""The §3.3 integration problems, demonstrated — then solved by CuPP.

The paper's motivation chapter argues raw CUDA + C++ breaks down in
specific ways.  Each test first *reproduces the failure mode* with the
raw runtime, then shows the CuPP feature that removes it.
"""

import numpy as np
import pytest

from repro.cuda import CudaMachine, CudaRuntime, cudaError, global_
from repro.cupp import (
    Boxed,
    ConstRef,
    Device,
    DeviceVector,
    Kernel,
    Ref,
    Vector,
)
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st
from repro.simgpu.memory import InvalidDeviceAccess


def machine():
    return CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 21)])


class TestShallowCopyProblem:
    """§3.3: "passing any object using pointers to a kernel results in
    invalid pointers when using the automatically generated copy
    constructor" — the shallow-copy trap."""

    def test_raw_cuda_shallow_copy_hands_the_device_a_host_pointer(self):
        # A C++-style struct holding a pointer to HOST data.
        class HostStruct:
            def __init__(self, payload):
                self.payload_ptr = payload  # "pointer" to host memory

        rt = CudaRuntime(machine())
        host_data = np.arange(4, dtype=np.float32)
        obj = HostStruct(host_data)

        captured = {}

        @global_
        def kernel(ctx, s):
            # The byte-wise copy delivered the *host* pointer; on real
            # hardware dereferencing it is garbage.  Our simulator makes
            # the hazard visible: it is not device memory at all.
            captured["ptr"] = s.payload_ptr
            yield op(OpClass.IADD)

        rt.cudaConfigureCall(1, 1)
        rt.cudaSetupArgument(obj, 0, size=4)
        assert rt.cudaLaunch(kernel).ok
        # The kernel got a host array — nothing device-resident.
        assert captured["ptr"] is host_data
        with pytest.raises(InvalidDeviceAccess):
            rt.device.memory._resolve(captured["ptr"], 4)  # not mapped

    def test_cupp_transform_fixes_it(self):
        # The CuPP answer (§4.4): the type's transform() moves the payload
        # to global memory and hands the kernel a *device* view.
        dev = Device(machine=machine())

        class HostStruct:
            def __init__(self, payload):
                self.payload = payload

            def transform(self, device):
                from repro.cupp import Memory1D

                self._mem = Memory1D.from_host(device, self.payload)
                return DeviceVector(self._mem.view())

        total = {}

        @global_
        def kernel(ctx, v: HostStruct):
            s = 0.0
            for j in range(len(v)):
                s += (yield ld(v.view, j))
                yield op(OpClass.FADD)
            total["sum"] = s

        Kernel(kernel, 1, 1)(dev, HostStruct(np.arange(4, dtype=np.float32)))
        assert total["sum"] == 6.0


class TestErrorCodeProblem:
    """§4.2: raw CUDA reports through return codes the caller can drop;
    CuPP throws."""

    def test_raw_cuda_error_is_silently_ignorable(self):
        rt = CudaRuntime(machine())
        err, ptr = rt.cudaMalloc(1 << 30)  # fails...
        assert err is cudaError.cudaErrorMemoryAllocation
        # ...and nothing stops the caller from sailing on with None.
        assert ptr is None

    def test_cupp_raises_instead(self):
        from repro.cupp import CuppMemoryError

        dev = Device(machine=machine())
        with pytest.raises(CuppMemoryError):
            dev.alloc(1 << 30)


class TestManualProtocolProblem:
    """§3.2.2's three-step launch with byte offsets vs cupp.Kernel."""

    def test_raw_protocol_accepts_silently_wrong_offsets(self):
        # Pushing arguments at swapped offsets is perfectly legal C —
        # and quietly gives the kernel swapped parameters.
        rt = CudaRuntime(machine())
        seen = {}

        @global_
        def kernel(ctx, a, b):
            seen["a"], seen["b"] = a, b
            yield op(OpClass.IADD)

        rt.cudaConfigureCall(1, 1)
        rt.cudaSetupArgument(1, 4, size=4)  # meant to be first...
        rt.cudaSetupArgument(2, 0, size=4)
        rt.cudaLaunch(kernel)
        assert seen == {"a": 2, "b": 1}  # swapped, no error anywhere

    def test_cupp_kernel_orders_by_signature(self):
        dev = Device(machine=machine())
        seen = {}

        @global_
        def kernel(ctx, a: int, b: int):
            seen["a"], seen["b"] = a, b
            yield op(OpClass.IADD)

        Kernel(kernel, 1, 1)(dev, 1, 2)
        assert seen == {"a": 1, "b": 2}


class TestManualTransferProblem:
    """§4.6: without lazy copying every launch needs hand-written
    memcpys; forgetting the copy-back silently computes on stale data."""

    def test_raw_cuda_stale_readback(self):
        from repro.cuda import cudaMemcpyKind

        rt = CudaRuntime(machine())
        data = np.arange(8, dtype=np.float32)
        err, ptr = rt.cudaMalloc(32)
        rt.cudaMemcpy(ptr, data, 32, cudaMemcpyKind.cudaMemcpyHostToDevice)

        from repro.simgpu.memory import DeviceArrayView

        view = DeviceArrayView(rt.device.memory, ptr, np.dtype(np.float32), 8)

        @global_
        def double(ctx, v):
            i = ctx.global_thread_id
            x = yield ld(v, i)
            yield st(v, i, x * 2)

        rt.cudaConfigureCall(1, 8)
        rt.cudaSetupArgument(view, 0, size=8)
        rt.cudaLaunch(double)
        # The developer forgot cudaMemcpy back: host data is stale and
        # nothing complains.
        assert (data == np.arange(8, dtype=np.float32)).all()

    def test_cupp_vector_cannot_go_stale(self):
        dev = Device(machine=machine())
        v = Vector(np.arange(8, dtype=np.float32))

        @global_
        def double(ctx, v: Ref[DeviceVector]):
            i = ctx.global_thread_id
            x = yield ld(v.view, i)
            yield st(v.view, i, x * 2)

        Kernel(double, 1, 8)(dev, v)
        # Any host read transparently fetches the fresh data (§4.6).
        assert v[3] == 6.0
