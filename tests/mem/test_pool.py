"""Unit tests for the repro.mem caching allocator."""

from __future__ import annotations

import pytest

from repro import obs
from repro.cuda.runtime import CudaMachine
from repro.cupp import Device
from repro.cupp.exceptions import (
    CuppInvalidFree,
    CuppUsageError,
    OutOfMemory,
)
from repro.mem import MemoryPool, PoolConfig
from repro.mem.pool import bin_size_for
from repro.simgpu.arch import scaled_arch
from repro.simgpu.memory import DevicePtr

MIB = 1 << 20


def make_device(memory_bytes: int = 64 * MIB) -> Device:
    machine = CudaMachine(
        [scaled_arch("pool-test", 2, memory_bytes=memory_bytes)]
    )
    return Device(machine=machine)


# ----------------------------------------------------------------------
# binning
# ----------------------------------------------------------------------
def test_bin_size_rounds_to_power_of_two():
    assert bin_size_for(1) == 256
    assert bin_size_for(256) == 256
    assert bin_size_for(257) == 512
    assert bin_size_for(1000) == 1024
    assert bin_size_for(1 << 20) == 1 << 20


def test_small_free_then_alloc_is_a_cache_hit():
    device = make_device()
    pool = device.enable_pool()
    p1 = device.alloc(1000)
    device.free(p1)
    p2 = device.alloc(900)  # same 1024 bin
    assert p2.addr == p1.addr
    stats = pool.stats()
    assert stats.hits == 1 and stats.misses == 1
    assert stats.hit_rate == 0.5
    pool.check_invariants()


def test_different_bins_do_not_share_blocks():
    device = make_device()
    pool = device.enable_pool()
    p1 = device.alloc(100)  # bin 256
    device.free(p1)
    p2 = device.alloc(5000)  # bin 8192 — no hit possible
    assert pool.stats().hits == 0
    assert pool.stats().misses == 2
    device.free(p2)
    pool.check_invariants()


def test_cache_hit_skips_the_driver():
    device = make_device()
    device.enable_pool()
    p = device.alloc(4096)
    device.free(p)
    raw_before = obs.counter("cuda.malloc.count").value
    device.alloc(4096)
    assert obs.counter("cuda.malloc.count").value == raw_before


# ----------------------------------------------------------------------
# arena (large blocks)
# ----------------------------------------------------------------------
def test_large_allocations_share_one_segment():
    device = make_device()
    pool = device.enable_pool(PoolConfig(segment_bytes=8 * MIB))
    raw_before = obs.counter("cuda.malloc.count").value
    a = device.alloc(2 * MIB)  # segment miss
    b = device.alloc(2 * MIB)  # split from the same segment: a hit
    assert obs.counter("cuda.malloc.count").value == raw_before + 1
    assert pool.stats().hits == 1
    assert a.addr != b.addr
    pool.check_invariants()


def test_coalescing_restores_the_segment_to_one_block():
    device = make_device()
    pool = device.enable_pool(
        PoolConfig(segment_bytes=8 * MIB, trim_enabled=False)
    )
    ptrs = [device.alloc(2 * MIB) for _ in range(4)]
    # Free in an order that exercises both coalesce directions.
    for p in (ptrs[1], ptrs[3], ptrs[0], ptrs[2]):
        device.free(p)
        pool.check_invariants()
    snap = pool.snapshot()
    assert len(snap["segments"]) == 1
    assert snap["segments"][0]["blocks"] == 1
    assert snap["segments"][0]["live_blocks"] == 0


def test_split_leaves_remainder_allocatable():
    device = make_device()
    pool = device.enable_pool(
        PoolConfig(segment_bytes=4 * MIB, trim_enabled=False)
    )
    a = device.alloc(3 * MIB)
    b = device.alloc((1 * MIB) + 256)  # too big for the 1 MiB remainder
    assert pool.stats().misses == 2  # second needed its own segment
    c = device.alloc(1 * MIB + 256)  # but an exact re-fit hits the cache
    device.free(b)
    d = device.alloc(1 * MIB + 256)
    assert d.addr == b.addr
    pool.check_invariants()


# ----------------------------------------------------------------------
# watermark trimming
# ----------------------------------------------------------------------
def test_trim_releases_down_to_the_low_watermark():
    device = make_device()
    pool = device.enable_pool(
        PoolConfig(
            high_watermark_bytes=4096, low_watermark_bytes=1024
        )
    )
    ptrs = [device.alloc(1024) for _ in range(6)]
    for p in ptrs:
        device.free(p)
    stats = pool.stats()
    assert stats.trims >= 1
    assert pool.bytes_cached <= 4096
    assert obs.get_ledger().count_for("pool-trim") >= 1
    pool.check_invariants()


def test_trim_disabled_caches_without_bound():
    device = make_device()
    pool = device.enable_pool(
        PoolConfig(
            high_watermark_bytes=4096,
            low_watermark_bytes=1024,
            trim_enabled=False,
        )
    )
    ptrs = [device.alloc(1024) for _ in range(6)]
    for p in ptrs:
        device.free(p)
    assert pool.stats().trims == 0
    assert pool.bytes_cached == 6 * 1024


def test_explicit_trim_to_zero_returns_everything():
    device = make_device()
    pool = device.enable_pool(PoolConfig(trim_enabled=False))
    for _ in range(3):
        device.free(device.alloc(2048))
    big = device.alloc(2 * MIB)
    device.free(big)
    released = pool.trim(0)
    assert released > 0
    assert pool.bytes_cached == 0
    assert pool.bytes_reserved == 0
    assert device.sim.memory.allocated_bytes == 0
    pool.check_invariants()


# ----------------------------------------------------------------------
# OOM: flush, retry, report
# ----------------------------------------------------------------------
def test_oom_flushes_cache_and_retries():
    device = make_device(1 * MIB)
    pool = device.enable_pool(PoolConfig(trim_enabled=False))
    ptrs = [device.alloc(100_000) for _ in range(7)]
    for p in ptrs:
        device.free(p)
    assert pool.bytes_cached > 700_000
    # Needs most of the device: only satisfiable after the flush.
    p = device.alloc(400_000)
    assert pool.stats().oom_flushes == 1
    assert obs.get_ledger().count_for("oom-flush") == 1
    pool.check_invariants()


def test_oom_raises_with_fragmentation_report():
    device = make_device(1 * MIB)
    pool = device.enable_pool()
    keep = device.alloc(200_000)
    with pytest.raises(OutOfMemory) as excinfo:
        device.alloc(1 * MIB)
    report = excinfo.value.report
    assert report["requested"] == 1 * MIB
    assert report["device_index"] == 0
    assert report["bytes_in_use"] == bin_size_for(200_000)
    assert report["device_free_bytes"] < 1 * MIB
    assert 0.0 <= report["fragmentation"] <= 1.0
    assert "bins" in report and "segments" in report
    # The failed attempt still flushed (and counted it).
    assert pool.stats().oom_flushes == 1
    # The pool stays usable after the failure.
    p = device.alloc(1000)
    device.free(p)
    pool.check_invariants()


def test_successful_oom_retry_records_ok_outcome():
    device = make_device(1 * MIB)
    pool = device.enable_pool(PoolConfig(trim_enabled=False))
    ptrs = [device.alloc(100_000) for _ in range(7)]
    for p in ptrs:
        device.free(p)
    device.alloc(400_000)
    stats = pool.stats()
    assert stats.oom_retries_ok == 1
    assert stats.oom_retries_failed == 0
    assert (
        obs.counter("mem.pool.oom_retries", device=0, outcome="ok").value == 1
    )


def test_failed_oom_retry_still_records_its_outcome():
    # The post-flush retry verdict must land in the stats, the counter,
    # and the fragmentation report even when the retry also fails.
    device = make_device(1 * MIB)
    pool = device.enable_pool()
    device.alloc(200_000)
    with pytest.raises(OutOfMemory) as excinfo:
        device.alloc(1 * MIB)
    assert excinfo.value.report["retry_outcome"] == "failed"
    stats = pool.stats()
    assert stats.oom_retries_failed == 1
    assert stats.oom_retries_ok == 0
    assert (
        obs.counter("mem.pool.oom_retries", device=0, outcome="failed").value
        == 1
    )


def test_out_of_memory_is_a_cupp_memory_error():
    from repro.cupp.exceptions import CuppMemoryError

    assert issubclass(OutOfMemory, CuppMemoryError)


# ----------------------------------------------------------------------
# double free & classification
# ----------------------------------------------------------------------
def test_double_free_of_pooled_pointer_raises():
    device = make_device()
    device.enable_pool()
    p = device.alloc(1000)
    device.free(p)
    with pytest.raises(CuppInvalidFree) as excinfo:
        device.free(p)
    assert excinfo.value.addr == p.addr
    assert excinfo.value.device_index == 0
    assert hex(p.addr) in str(excinfo.value)


def test_double_free_without_pool_raises_with_context():
    device = make_device()
    p = device.alloc(1000)
    device.free(p)
    with pytest.raises(CuppInvalidFree) as excinfo:
        device.free(p)
    assert excinfo.value.addr == p.addr
    assert excinfo.value.device_index == 0


def test_foreign_pointer_free_raises():
    device = make_device()
    device.enable_pool()
    with pytest.raises(CuppInvalidFree):
        device.free(DevicePtr(0x13370))


def test_free_null_is_a_noop():
    device = make_device()
    device.enable_pool()
    device.free(DevicePtr(0))  # cudaFree(NULL) semantics


def test_classify():
    device = make_device()
    pool = device.enable_pool()
    live = device.alloc(512)
    cached = device.alloc(512 * 3)
    device.free(cached)
    assert pool.classify(live) == "live"
    assert pool.classify(cached) == "cached"
    assert pool.classify(DevicePtr(0xDEAD00)) == "unknown"
    assert pool.owns(live) and pool.owns(cached)
    assert not pool.owns(DevicePtr(0xDEAD00))


def test_prepool_allocation_falls_through_to_raw_free():
    device = make_device()
    before = device.alloc(1000)  # raw allocation, no pool yet
    device.enable_pool()
    device.free(before)  # classify -> unknown -> raw path succeeds
    assert device.sim.memory.allocated_bytes == 0


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def test_enable_pool_is_idempotent():
    device = make_device()
    pool = device.enable_pool()
    assert device.enable_pool() is pool
    with pytest.raises(CuppUsageError):
        device.enable_pool(PoolConfig())  # reconfigure needs disable first


def test_disable_pool_with_live_allocations_refuses():
    device = make_device()
    device.enable_pool()
    p = device.alloc(1000)
    with pytest.raises(CuppUsageError):
        device.disable_pool()
    device.free(p)
    device.disable_pool()
    assert device.pool is None
    assert device.sim.memory.allocated_bytes == 0


def test_close_with_pool_leaves_no_driver_allocations():
    device = make_device()
    device.enable_pool()
    device.alloc(1000)
    device.alloc(3 * MIB)
    mem = device.sim.memory
    device.close()
    assert mem.allocated_bytes == 0
    mem.check_invariants()


def test_watermark_config_validated():
    device = make_device()
    with pytest.raises(CuppUsageError):
        MemoryPool(
            device,
            PoolConfig(high_watermark_bytes=100, low_watermark_bytes=200),
        )


def test_negative_alloc_rejected():
    device = make_device()
    device.enable_pool()
    with pytest.raises(CuppUsageError):
        device.alloc(-1)


def test_zero_byte_alloc_is_valid():
    device = make_device()
    pool = device.enable_pool()
    p = device.alloc(0)
    assert p
    device.free(p)
    pool.check_invariants()


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
def test_gauges_track_use_and_reservation():
    device = make_device()
    device.enable_pool()
    p = device.alloc(1000)
    assert obs.gauge("mem.bytes_in_use", device=0).value == 1024
    assert obs.gauge("mem.bytes_reserved", device=0).value == 1024
    device.free(p)
    assert obs.gauge("mem.bytes_in_use", device=0).value == 0
    assert obs.gauge("mem.bytes_reserved", device=0).value == 1024
    frag = obs.gauge("mem.fragmentation", device=0).value
    assert 0.0 <= frag <= 1.0


def test_ledger_pool_causes_move_nothing():
    device = make_device()
    device.enable_pool()
    p = device.alloc(1000)
    device.free(p)
    device.alloc(1000)
    ledger = obs.get_ledger()
    assert ledger.count_for("pool-miss") == 1
    assert ledger.count_for("pool-hit") == 1
    assert ledger.bytes_for("pool-hit") == 1024
    # Pool entries never move bytes across the bus.
    assert ledger.moved_bytes("none") == 0
    assert ledger.bytes_saved >= 2048


def test_snapshot_shape():
    device = make_device()
    pool = device.enable_pool()
    device.alloc(1000)
    big = device.alloc(2 * MIB)
    device.free(big)
    snap = pool.snapshot()
    assert snap["device_index"] == 0
    assert snap["allocs"] == 2 and snap["frees"] == 1
    assert snap["bytes_in_use"] == 1024
    assert snap["watermarks"]["high"] > snap["watermarks"]["low"]
    assert snap["segments"][0]["live_blocks"] == 0
    assert isinstance(snap["hit_rate"], float)
