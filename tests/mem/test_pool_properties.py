"""Property tests: random alloc/free churn never corrupts the allocator.

Every sequence of pool operations must leave both the pool's own books
(`MemoryPool.check_invariants`) and the simulated driver heap
(`DeviceMemory.check_invariants`) consistent, and the two must agree on
how many bytes are reserved when the pool is the sole allocator.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda.runtime import CudaMachine
from repro.cupp import Device
from repro.mem import PoolConfig
from repro.simgpu.arch import scaled_arch

MIB = 1 << 20


def make_device(memory_bytes: int = 64 * MIB) -> Device:
    machine = CudaMachine(
        [scaled_arch("pool-prop", 2, memory_bytes=memory_bytes)]
    )
    return Device(machine=machine)


# (is_alloc, value): alloc of `value` bytes, or free of the live ptr at
# index `value % len(live)`. Sizes straddle the small/large threshold so
# both the bins and the arena churn.
OPS = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=3 * MIB),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_random_churn_preserves_invariants(ops):
    device = make_device()
    pool = device.enable_pool()
    live = []
    for is_alloc, value in ops:
        if is_alloc or not live:
            live.append(device.alloc(value))
        else:
            device.free(live.pop(value % len(live)))
        pool.check_invariants()
        device.sim.memory.check_invariants()
        # Sole allocator: pool reservation mirrors the driver heap.
        assert pool.bytes_reserved == device.sim.memory.allocated_bytes
    for ptr in live:
        device.free(ptr)
    pool.check_invariants()
    assert pool.stats().bytes_in_use == 0


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(
        st.integers(min_value=MIB + 1, max_value=2 * MIB),
        min_size=2,
        max_size=8,
    ),
    free_order=st.randoms(use_true_random=False),
)
def test_freeing_everything_coalesces_every_segment(sizes, free_order):
    device = make_device()
    pool = device.enable_pool(
        PoolConfig(segment_bytes=8 * MIB, trim_enabled=False)
    )
    ptrs = [device.alloc(n) for n in sizes]
    free_order.shuffle(ptrs)
    for p in ptrs:
        device.free(p)
        pool.check_invariants()
    for seg in pool.snapshot()["segments"]:
        assert seg["live_blocks"] == 0
        assert seg["blocks"] == 1  # fully coalesced back to one block


@settings(max_examples=40, deadline=None)
@given(ops=OPS)
def test_disable_pool_after_churn_returns_all_memory(ops):
    device = make_device()
    device.enable_pool()
    live = []
    for is_alloc, value in ops:
        if is_alloc or not live:
            live.append(device.alloc(value))
        else:
            device.free(live.pop(value % len(live)))
    for ptr in live:
        device.free(ptr)
    device.disable_pool()
    assert device.sim.memory.allocated_bytes == 0
    device.sim.memory.check_invariants()
