"""repro.obs.analyze: span stats, critical path, ledger rollup, diff."""

import json

from repro import obs
from repro.obs.analyze import (
    Analysis,
    SpanStats,
    analyze,
    build_forest,
    critical_path,
    diff,
    events_from_chrome_trace,
    ledger_rollup,
    load_events,
    main,
)
from repro.obs.export import chrome_trace
from repro.obs.ledger import TransferRecord
from repro.obs.tracer import TraceEvent


def _span(name, ts, dur, tid=0):
    return TraceEvent(
        name=name, kind="span", ts=ts, dur=dur, tid=tid, depth=0, parent=None
    )


def _instant(name, ts, tid=0, **args):
    return TraceEvent(
        name=name,
        kind="instant",
        ts=ts,
        dur=0.0,
        tid=tid,
        depth=0,
        parent=None,
        args=args,
    )


class TestForest:
    def test_containment_rebuilds_nesting(self):
        events = [
            _span("root", 0.0, 10.0),
            _span("child-a", 1.0, 3.0),
            _span("grandchild", 1.5, 1.0),
            _span("child-b", 5.0, 4.0),
            _span("other-root", 11.0, 2.0),
        ]
        roots = build_forest(events)
        assert [r.name for r in roots] == ["root", "other-root"]
        root = roots[0]
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        # self time = 10 - (3 + 4); grandchild is *not* double-counted.
        assert root.self_s == 3.0

    def test_threads_build_separate_trees(self):
        events = [
            _span("main", 0.0, 10.0, tid=1),
            _span("worker", 0.5, 9.0, tid=2),
        ]
        roots = build_forest(events)
        assert len(roots) == 2
        assert all(not r.children for r in roots)

    def test_critical_path_follows_heaviest_chain(self):
        events = [
            _span("root", 0.0, 10.0),
            _span("light", 0.0, 2.0),
            _span("heavy", 2.0, 7.0),
            _span("leaf", 2.0, 6.0),
        ]
        path = critical_path(build_forest(events))
        assert [name for name, _, _ in path] == ["root", "heavy", "leaf"]


class TestSpanStats:
    def test_exact_percentiles(self):
        stats = SpanStats("s", durations=[1.0, 2.0, 3.0, 4.0])
        assert stats.percentile(0) == 1.0
        assert stats.percentile(100) == 4.0
        assert stats.percentile(50) == 2.5

    def test_single_sample_and_empty(self):
        assert SpanStats("s", durations=[7.0]).percentile(99) == 7.0
        assert SpanStats("s").percentile(50) == 0.0

    def test_analyze_aggregates_by_name(self):
        events = [
            _span("run", 0.0, 10.0),
            _span("step", 0.0, 4.0),
            _span("step", 4.0, 6.0),
            _instant("tick", 1.0),
            _instant("tick", 2.0),
        ]
        result = analyze(events)
        step = result.spans["step"]
        assert step.count == 2
        assert step.total_s == 10.0
        assert result.spans["run"].self_s == 0.0
        # All of the run's time is inside the steps -> steps top the
        # self-time breakdown (the computed bottleneck).
        assert result.breakdown[0] == ("step", 10.0)
        assert result.instants == {"tick": 2}
        assert result.wall_s == 10.0


class TestChromeRoundTrip:
    def test_analysis_matches_live_events(self, tmp_path):
        with obs.capture() as cap:
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.instant("blip", nbytes=3)
        doc = chrome_trace(cap.events)
        reloaded = events_from_chrome_trace(doc)
        live, offline = analyze(cap.events), analyze(reloaded)
        assert set(live.spans) == set(offline.spans) == {"outer", "inner"}
        assert live.instants == offline.instants == {"blip": 1}
        # µs-quantized timestamps still produce the same nesting.
        assert [n for n, _, _ in offline.critical_path] == ["outer", "inner"]

    def test_load_events_reads_exported_file(self, tmp_path):
        with obs.capture() as cap:
            with obs.span("work"):
                pass
        paths = cap.write(str(tmp_path), stem="run")
        events = load_events(paths[0])
        assert [e.name for e in events if e.kind == "span"] == ["work"]


class TestLedgerRollup:
    def test_rollup_splits_moved_and_avoided_per_phase(self):
        entries = [
            TransferRecord("eager", "h2d", 100, True, "a", ts=1.0),
            TransferRecord("eager", "h2d", 50, True, "b", ts=12.0),
            TransferRecord("copy-back-skipped-const", "d2h", 70, False, "c", ts=1.5),
            TransferRecord("lazy-miss", "h2d", 9, True, "d", ts=99.0),
        ]
        events = [_span("warmup", 0.0, 5.0), _span("steady", 10.0, 5.0)]
        rollup = ledger_rollup(entries, events)
        assert rollup["eager"]["moved_bytes"] == 150
        assert rollup["eager"]["phases"] == {"warmup": 100, "steady": 50}
        skipped = rollup["copy-back-skipped-const"]
        assert skipped["avoided_bytes"] == 70 and skipped["moved_bytes"] == 0
        assert rollup["lazy-miss"]["phases"] == {"(untraced)": 9}


class TestDiff:
    def _analysis(self, **totals):
        out = Analysis()
        for name, total in totals.items():
            out.spans[name] = SpanStats(
                name, count=1, total_s=total, self_s=total, durations=[total]
            )
        return out

    def test_classifies_regressions_and_improvements(self):
        a = self._analysis(kernel=1.0, transfer=1.0, steady=1.0, gone=1.0)
        b = self._analysis(kernel=2.0, transfer=0.4, steady=1.01, new=1.0)
        result = diff(a, b, tolerance_pct=10.0)
        verdicts = {r["name"]: r["verdict"] for r in result["spans"]}
        assert verdicts == {
            "kernel": "regression",
            "transfer": "improvement",
            "steady": "unchanged",
            "gone": "removed",
            "new": "added",
        }
        assert result["regressions"] == 1 and result["improvements"] == 1


class TestGpusteerLadder:
    """The acceptance scenario: v4 vs v5 runs, diffed offline."""

    def _capture_run(self, version):
        from repro.gpusteer.pipeline import GpuBoidsRun

        # Warm-up run outside the capture: first-call costs (lazy numpy
        # allocations etc.) land in `gpusteer.run` self time and would
        # otherwise drown the step loop in a tiny benchmark.
        GpuBoidsRun(64, version=version, seed=7, engine="numpy").run(steps=1)
        with obs.capture() as cap:
            GpuBoidsRun(64, version=version, seed=7, engine="numpy").run(
                steps=8
            )
        return cap

    def test_diff_reports_per_span_deltas_and_critical_path(self, tmp_path):
        cap4, cap5 = self._capture_run(4), self._capture_run(5)
        a, b = analyze(cap4.events), analyze(cap5.events)
        # The known bottleneck of a gpusteer run is the per-frame step
        # loop: the critical-path breakdown must rank it first.
        assert a.breakdown[0][0] == "gpusteer.step"
        assert [n for n, _, _ in a.critical_path[:2]] == [
            "gpusteer.run",
            "gpusteer.step",
        ]
        result = diff(a, b)
        names = {r["name"] for r in result["spans"]}
        assert {"gpusteer.run", "gpusteer.step"} <= names
        row = next(r for r in result["spans"] if r["name"] == "gpusteer.step")
        assert row["count_a"] == row["count_b"] == 8
        assert "total_change_pct" in row
        assert result["critical_path_a"][0]["name"] == "gpusteer.run"

    def test_cli_diff_end_to_end(self, tmp_path, capsys):
        paths = []
        for version in (4, 5):
            cap = self._capture_run(version)
            paths.append(cap.write(str(tmp_path), stem=f"v{version}")[0])
        report = tmp_path / "diff.json"
        code = main(
            ["--diff", paths[0], paths[1], "--json", str(report)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace diff" in out and "gpusteer.step" in out
        payload = json.loads(report.read_text())
        assert payload["critical_path_a"][0]["name"] == "gpusteer.run"

    def test_cli_single_run_report(self, tmp_path, capsys):
        cap = self._capture_run(5)
        trace = cap.write(str(tmp_path), stem="v5")[0]
        assert main([trace]) == 0
        out = capsys.readouterr().out
        assert "span statistics" in out
        assert "critical path" in out

    def test_cli_argument_errors(self, tmp_path):
        cap = self._capture_run(5)
        trace = cap.write(str(tmp_path), stem="v5")[0]
        assert main(["--diff", trace]) == 2
        assert main([trace, trace]) == 2
