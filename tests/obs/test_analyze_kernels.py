"""The analyzer's kernels section: launch-span profile rollup + diffs."""

from repro.obs.analyze import (
    analyze,
    diff,
    events_from_chrome_trace,
    render_analysis,
    render_diff,
)
from repro.obs.session import capture


def pipeline_events(version, steps=1, n=32):
    from repro.gpusteer.emulated import EmulatedBoids

    with capture() as cap:
        boids = EmulatedBoids(n, version, seed=3, threads_per_block=16)
        for _ in range(steps):
            boids.step()
    # Round-trip through Chrome JSON like a re-loaded trace would.
    return events_from_chrome_trace(cap.chrome_trace())


class TestKernelRollup:
    def test_rollup_sums_profile_counters_per_kernel(self):
        analysis = analyze(pipeline_events(1, steps=2))
        assert set(analysis.kernels) == {"find_neighbors_v1"}
        row = analysis.kernels["find_neighbors_v1"]
        assert row["launches"] == 2
        assert row["instructions"] > 0
        assert row["uncoalesced_read_transactions"] > 0
        assert row["modelled_s"] > 0

    def test_rollup_reaches_to_dict_and_render(self):
        analysis = analyze(pipeline_events(5))
        d = analysis.to_dict()
        assert set(d["kernels"]) == {"simulate_v4", "modify_kernel"}
        text = render_analysis(analysis)
        assert "kernels (launch-span profile rollup)" in text
        assert "modify_kernel" in text

    def test_traces_without_launches_have_no_section(self):
        from repro import obs

        with capture() as cap:
            with obs.span("host.only"):
                pass
        analysis = analyze(events_from_chrome_trace(cap.chrome_trace()))
        assert analysis.kernels == {}
        assert "kernels" not in render_analysis(analysis)


class TestKernelDiff:
    def test_kernel_turnover_gets_added_removed_verdicts(self):
        a = analyze(pipeline_events(1))
        b = analyze(pipeline_events(5))
        result = diff(a, b)
        verdicts = {
            row["kernel"]: row["verdict"] for row in result["kernels"]
        }
        assert verdicts["find_neighbors_v1"] == "removed"
        assert verdicts["simulate_v4"] == "added"
        assert "kernels (launch-span rollup, A vs B)" in (
            render_diff(result)
        )

    def test_shared_kernel_gets_regression_verdict(self):
        a = analyze(pipeline_events(5, steps=1))
        b = analyze(pipeline_events(5, steps=3))
        result = diff(a, b, tolerance_pct=10.0)
        rows = {row["kernel"]: row for row in result["kernels"]}
        entry = rows["simulate_v4"]
        # Three steps launch three times the kernel work: a regression
        # beyond any reasonable tolerance, with counters attached.
        assert entry["verdict"] == "regression"
        assert entry["counters"]["launches"]["b"] == 3
        assert entry["counters"]["instructions"]["b"] > (
            entry["counters"]["instructions"]["a"]
        )

    def test_identical_runs_are_unchanged(self):
        a = analyze(pipeline_events(5))
        b = analyze(pipeline_events(5))
        result = diff(a, b)
        assert all(
            row["verdict"] == "unchanged" for row in result["kernels"]
        )
