"""The analyzer's containers section: ``grid-build`` / ``grid-query``
grouped apart from bus traffic and allocator causes, end to end from
live ``cupp.containers`` activity down to the rendered tables."""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.obs.analyze import (
    analyze,
    ledger_rollup,
    memory_rollup,
    render_analysis,
)
from repro.obs.ledger import CAUSES, CONTAINER_CAUSES, TransferRecord
from repro.obs.tracer import TraceEvent


def _instant(name, ts, **args):
    return TraceEvent(
        name=name,
        kind="instant",
        ts=ts,
        dur=0.0,
        tid=0,
        depth=0,
        parent=None,
        args=args,
    )


def test_container_causes_cover_the_subsystem_vocabulary():
    assert set(CONTAINER_CAUSES) == {"grid-build", "grid-query"}
    assert set(CONTAINER_CAUSES) <= set(CAUSES)


def test_analyze_collects_container_instants():
    events = [
        _instant("transfer:grid-build", 1.0, nbytes=256),
        _instant("transfer:grid-build", 2.0, nbytes=256),
        _instant("transfer:grid-query", 3.0, nbytes=1024),
        _instant("transfer:eager", 4.0, nbytes=999),  # bus traffic
        _instant("transfer:pool-hit", 5.0, nbytes=64),  # allocator
    ]
    analysis = analyze(events)
    assert analysis.containers == {
        "grid-build": {"count": 2, "bytes": 512},
        "grid-query": {"count": 1, "bytes": 1024},
    }
    # The three families stay disjoint.
    assert "grid-build" not in analysis.memory
    assert analysis.to_dict()["containers"] == analysis.containers


def test_analyze_from_live_hashgrid_activity():
    from repro.cuda import CudaMachine
    from repro.cupp import Device
    from repro.cupp.containers import HashGrid
    from repro.simgpu import scaled_arch

    obs.reset()
    obs.enable_tracing()
    device = Device(
        machine=CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)])
    )
    grid = HashGrid(cell_edge=2.0)
    rng = np.random.default_rng(0)
    grid.build(rng.uniform(-4, 4, (8, 3)).astype(np.float32))
    grid.transform(device)  # upload: grid-build rows + one grid-query
    grid.transform(device)  # lazy hit: one more grid-query
    analysis = analyze(obs.get_tracer().events())
    assert analysis.containers["grid-query"]["count"] == 2
    assert analysis.containers["grid-build"]["count"] >= 2  # CSR + map
    assert (
        analysis.containers["grid-query"]["bytes"] == 2 * grid.device_nbytes
    )
    obs.reset()


def test_memory_rollup_three_way_split():
    entries = [
        TransferRecord("eager", "h2d", 100, True, "a", ts=1.0),
        TransferRecord("pool-hit", "none", 1024, False, "p", ts=2.0),
        TransferRecord("grid-build", "h2d", 640, True, "g", ts=3.0),
        TransferRecord("grid-query", "d2d", 640, False, "g", ts=4.0),
    ]
    flat = ledger_rollup(entries)
    split = memory_rollup(flat)
    assert set(split["transfers"]) == {"eager"}
    assert set(split["memory"]) == {"pool-hit"}
    assert set(split["containers"]) == {"grid-build", "grid-query"}
    assert split["containers"]["grid-build"] is flat["grid-build"]


def test_render_includes_containers_table_only_when_present():
    with_containers = analyze(
        [_instant("transfer:grid-query", 0.5, nbytes=4096)]
    )
    text = render_analysis(with_containers)
    assert "containers (device data-structure causes)" in text
    assert "grid-query" in text and "4,096" in text
    without = analyze([_instant("transfer:eager", 0.5, nbytes=1)])
    assert "containers (" not in render_analysis(without)


def test_containers_counter_family_registered():
    obs.reset()
    obs.counter("cupp.containers.builds").inc()
    obs.counter("cupp.containers.queries").inc(2)
    assert obs.counter("cupp.containers.builds").value == 1
    assert obs.counter("cupp.containers.queries").value == 2
    obs.reset()
