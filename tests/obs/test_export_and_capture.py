"""repro.obs.export + session: Chrome-trace schema, capture scoping."""

import json

from repro import obs
from repro.obs.export import TRACE_PID, chrome_trace
from repro.obs.tracer import InMemoryRecorder, Tracer


def _sample_events():
    tracer = Tracer(InMemoryRecorder())
    with tracer.span("outer", n=4096):
        tracer.instant("tick", nbytes=128)
        with tracer.span("inner"):
            pass
    return tracer.events()


class TestChromeTrace:
    def test_schema_fields(self):
        doc = chrome_trace(_sample_events(), process_name="demo")
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events[0] == {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "demo"},
        }
        by_name = {e["name"]: e for e in events}
        outer, inner, tick = by_name["outer"], by_name["inner"], by_name["tick"]
        for span in (outer, inner):
            assert span["ph"] == "X"
            assert span["dur"] >= 0.0 and span["ts"] >= 0.0
            assert span["pid"] == TRACE_PID
        assert tick["ph"] == "i" and tick["s"] == "t"
        assert tick["args"]["nbytes"] == 128
        # Span containment survives the µs conversion.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_round_trips_through_json(self):
        doc = chrome_trace(_sample_events())
        text = json.dumps(doc)
        assert json.loads(text) == doc

    def test_non_jsonable_args_coerced(self):
        tracer = Tracer(InMemoryRecorder())
        with tracer.span("weird", obj=object(), pair=(1, 2)):
            pass
        doc = chrome_trace(tracer.events())
        args = doc["traceEvents"][-1]["args"]
        assert isinstance(args["obj"], str)
        assert args["pair"] == [1, 2]

    def test_empty_event_list_is_valid(self):
        doc = chrome_trace([])
        assert doc["traceEvents"][0]["ph"] == "M"
        json.dumps(doc)


class TestCapture:
    def test_capture_scopes_events_and_ledger(self):
        obs.record_transfer("eager", "h2d", 7)  # before: must not leak in
        with obs.capture() as cap:
            with obs.span("work"):
                obs.record_transfer("lazy-miss", "h2d", 64)
        assert {e.name for e in cap.events} == {"work", "transfer:lazy-miss"}
        assert cap.ledger["bytes_by_cause"]["lazy-miss"] == 64
        assert cap.ledger["count_by_cause"]["eager"] == 0
        assert not obs.enabled()  # restored to the pre-capture state

    def test_nested_captures_compose(self):
        with obs.capture() as outer_cap:
            with obs.span("outer-only"):
                pass
            with obs.capture() as inner_cap:
                with obs.span("inner-only"):
                    pass
        assert {e.name for e in inner_cap.events} == {"inner-only"}
        # The enclosing capture still sees the inner events (replayed).
        assert {e.name for e in outer_cap.events} == {"outer-only", "inner-only"}

    def test_write_emits_loadable_files(self, tmp_path):
        with obs.capture() as cap:
            with obs.span("work"):
                obs.record_transfer("copy-back", "d2h", 12)
        paths = cap.write(str(tmp_path), stem="unit")
        assert [p.rsplit("/", 1)[-1] for p in paths] == [
            "unit.trace.json",
            "unit.metrics.json",
        ]
        with open(paths[0], encoding="utf-8") as fh:
            trace = json.load(fh)
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        with open(paths[1], encoding="utf-8") as fh:
            metrics = json.load(fh)
        assert metrics["transfer_ledger"]["bytes_by_cause"]["copy-back"] == 12
