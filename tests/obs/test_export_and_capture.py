"""repro.obs.export + session: Chrome-trace schema, capture scoping."""

import json

from repro import obs
from repro.obs.export import TRACE_PID, chrome_trace
from repro.obs.tracer import InMemoryRecorder, Tracer


def _sample_events():
    tracer = Tracer(InMemoryRecorder())
    with tracer.span("outer", n=4096):
        tracer.instant("tick", nbytes=128)
        with tracer.span("inner"):
            pass
    return tracer.events()


class TestChromeTrace:
    def test_schema_fields(self):
        doc = chrome_trace(_sample_events(), process_name="demo")
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events[0] == {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "demo"},
        }
        by_name = {e["name"]: e for e in events}
        outer, inner, tick = by_name["outer"], by_name["inner"], by_name["tick"]
        for span in (outer, inner):
            assert span["ph"] == "X"
            assert span["dur"] >= 0.0 and span["ts"] >= 0.0
            assert span["pid"] == TRACE_PID
        assert tick["ph"] == "i" and tick["s"] == "t"
        assert tick["args"]["nbytes"] == 128
        # Span containment survives the µs conversion.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_round_trips_through_json(self):
        doc = chrome_trace(_sample_events())
        text = json.dumps(doc)
        assert json.loads(text) == doc

    def test_non_jsonable_args_coerced(self):
        tracer = Tracer(InMemoryRecorder())
        with tracer.span("weird", obj=object(), pair=(1, 2)):
            pass
        doc = chrome_trace(tracer.events())
        args = doc["traceEvents"][-1]["args"]
        assert isinstance(args["obj"], str)
        assert args["pair"] == [1, 2]

    def test_empty_event_list_is_valid(self):
        doc = chrome_trace([])
        assert doc["traceEvents"][0]["ph"] == "M"
        json.dumps(doc)


class TestCapture:
    def test_capture_scopes_events_and_ledger(self):
        obs.record_transfer("eager", "h2d", 7)  # before: must not leak in
        with obs.capture() as cap:
            with obs.span("work"):
                obs.record_transfer("lazy-miss", "h2d", 64)
        assert {e.name for e in cap.events} == {"work", "transfer:lazy-miss"}
        assert cap.ledger["bytes_by_cause"]["lazy-miss"] == 64
        assert cap.ledger["count_by_cause"]["eager"] == 0
        assert not obs.enabled()  # restored to the pre-capture state

    def test_nested_captures_compose(self):
        with obs.capture() as outer_cap:
            with obs.span("outer-only"):
                pass
            with obs.capture() as inner_cap:
                with obs.span("inner-only"):
                    pass
        assert {e.name for e in inner_cap.events} == {"inner-only"}
        # The enclosing capture still sees the inner events (replayed).
        assert {e.name for e in outer_cap.events} == {"outer-only", "inner-only"}

    def test_write_emits_loadable_files(self, tmp_path):
        with obs.capture() as cap:
            with obs.span("work"):
                obs.record_transfer("copy-back", "d2h", 12)
        paths = cap.write(str(tmp_path), stem="unit")
        assert [p.rsplit("/", 1)[-1] for p in paths] == [
            "unit.trace.json",
            "unit.metrics.json",
        ]
        with open(paths[0], encoding="utf-8") as fh:
            trace = json.load(fh)
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        with open(paths[1], encoding="utf-8") as fh:
            metrics = json.load(fh)
        assert metrics["transfer_ledger"]["bytes_by_cause"]["copy-back"] == 12


class TestMultiThreadedTracing:
    """Concurrent spans from several threads survive the export."""

    def _trace_two_threads(self):
        import threading

        tracer = Tracer(InMemoryRecorder())
        barrier = threading.Barrier(2)

        def worker(label):
            barrier.wait()  # both threads trace concurrently
            with tracer.span(f"{label}.outer", who=label):
                tracer.instant(f"{label}.tick", who=label, n=3)
                with tracer.span(f"{label}.inner"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(label,))
            for label in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return tracer.events()

    def test_tids_distinguish_threads_in_chrome_json(self):
        events = self._trace_two_threads()
        doc = json.loads(json.dumps(chrome_trace(events)))
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 4
        tids = {e["name"].split(".")[0]: e["tid"] for e in spans}
        assert tids["a"] != tids["b"]
        # Every event of one logical thread carries that thread's tid.
        for entry in spans:
            assert entry["tid"] == tids[entry["name"].split(".")[0]]

    def test_nesting_is_correct_per_thread(self):
        events = self._trace_two_threads()
        doc = json.loads(json.dumps(chrome_trace(events)))
        by_name = {e["name"]: e for e in doc["traceEvents"] if "ph" in e}
        for label in ("a", "b"):
            outer, inner = by_name[f"{label}.outer"], by_name[f"{label}.inner"]
            assert outer["ts"] <= inner["ts"]
            assert (
                inner["ts"] + inner["dur"]
                <= outer["ts"] + outer["dur"] + 1e-6
            )

    def test_instant_args_survive_round_trip(self):
        events = self._trace_two_threads()
        doc = json.loads(json.dumps(chrome_trace(events)))
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert {e["args"]["who"] for e in instants} == {"a", "b"}
        assert all(e["args"]["n"] == 3 for e in instants)
        assert all(e["s"] == "t" for e in instants)

    def test_analyzer_builds_one_tree_per_thread(self):
        from repro.obs.analyze import analyze, build_forest

        events = self._trace_two_threads()
        roots = build_forest(events)
        assert sorted(r.name for r in roots) == ["a.outer", "b.outer"]
        assert all([c.name for c in r.children] for r in roots)
        result = analyze(events)
        assert result.spans["a.inner"].count == 1
