"""repro.obs.flight: trace contexts, span links, tail sampling, and the
per-device timeline profiler — plus the exemplar plumbing in metrics."""

import pytest

from repro.obs.flight import (
    DeviceEvent,
    FlightRecorder,
    SpanLink,
    device_chrome_trace,
    device_utilization,
    load_flight,
    render_gantt,
)
from repro.obs.metrics import Histogram, Window


class TestSpansAndLinks:
    def test_span_lifecycle_and_ids_are_monotone(self):
        fl = FlightRecorder()
        ctx = fl.mint()
        a = fl.start(ctx, "request", 1.0, request=7)
        b = fl.start(ctx, "queue", 1.5, parent=a)
        assert b.span_id == a.span_id + 1
        assert b.parent_id == a.span_id
        assert b.end_s is None and b.dur_s == 0.0
        fl.end(b, 2.0, outcome="launched")
        assert b.dur_s == pytest.approx(0.5)
        assert b.attrs["outcome"] == "launched"

    def test_links_cross_traces(self):
        fl = FlightRecorder()
        one, two = fl.mint(), fl.mint()
        assert one.trace_id != two.trace_id
        a = fl.start(one, "attempt-1", 0.0)
        b = fl.start(two, "attempt-1", 0.0)
        fl.link(a, two.trace_id, b.span_id, "coalesced")
        assert a.links == [SpanLink(two.trace_id, b.span_id, "coalesced")]

    def test_batch_spans_live_in_their_own_trace_and_ring(self):
        fl = FlightRecorder(max_batch_spans=2)
        spans = [fl.start_batch(float(i), batch=i) for i in range(4)]
        assert all(s.trace_id.startswith("b") for s in spans)
        assert fl.batch_span(spans[0].span_id) is None  # evicted
        assert fl.batch_span(spans[3].span_id) is spans[3]

    def test_span_round_trips_through_dict(self):
        fl = FlightRecorder()
        ctx = fl.mint()
        span = fl.start(ctx, "attempt-1", 1.0, device=0)
        fl.link(span, "t9", 42, "retry-of")
        fl.end(span, 2.0)
        from repro.obs.flight import FlightSpan

        clone = FlightSpan.from_dict(span.to_dict())
        assert clone == span


class TestTailSampling:
    def test_flagged_traces_are_retained(self):
        fl = FlightRecorder(head_sample_every=0)
        ctx = fl.mint()
        ctx.root = fl.start(ctx, "request", 0.0, request=1)
        fl.end(ctx.root, 1.0)
        ctx.flags.add("fault")
        assert fl.finish(ctx, 1.0)
        record = fl.trace(ctx.trace_id)
        assert record is not None and record.flags == {"fault"}
        assert fl.trace_for_request(1) is record

    def test_boring_traces_are_dropped(self):
        fl = FlightRecorder(head_sample_every=0)
        ctx = fl.mint()
        ctx.root = fl.start(ctx, "request", 0.0, request=1)
        fl.end(ctx.root, 1.0)
        assert not fl.finish(ctx, 1.0)
        assert fl.trace(ctx.trace_id) is None
        assert fl.stats()["dropped"] == 1

    def test_deterministic_head_sample_keeps_one_in_n(self):
        fl = FlightRecorder(head_sample_every=4)
        kept = 0
        for i in range(12):
            ctx = fl.mint()
            ctx.root = fl.start(ctx, "request", 0.0, request=i)
            fl.end(ctx.root, 0.0)
            kept += fl.finish(ctx, 0.0)
        assert kept == 3  # seq 0, 4, 8
        assert all("head" in r.flags for r in fl.retained())

    def test_slow_threshold_flags_and_retains(self):
        fl = FlightRecorder(head_sample_every=0, slow_threshold_s=0.5)
        slow, fast = fl.mint(), fl.mint()
        for ctx, dur in ((slow, 0.9), (fast, 0.1)):
            ctx.root = fl.start(ctx, "request", 0.0, request=ctx.seq)
            fl.end(ctx.root, dur)
            fl.finish(ctx, dur)
        assert "slow" in fl.trace(slow.trace_id).flags
        assert fl.trace(fast.trace_id) is None

    def test_retention_cap_evicts_head_samples_first(self):
        fl = FlightRecorder(head_sample_every=1, max_retained=3)
        interesting = []
        for i in range(6):
            ctx = fl.mint()
            ctx.root = fl.start(ctx, "request", 0.0, request=i)
            fl.end(ctx.root, 0.0)
            if i >= 4:
                ctx.flags.add("fault")
                interesting.append(ctx.trace_id)
            fl.finish(ctx, 0.0)
        assert fl.retained_count == 3
        # Both interesting traces survive; only one head sample does.
        for trace_id in interesting:
            assert fl.trace(trace_id) is not None
        assert fl.stats()["evicted"] == 3

    def test_slow_floods_never_evict_critical_traces(self):
        fl = FlightRecorder(head_sample_every=0, max_retained=4)
        ctx = fl.mint()
        ctx.root = fl.start(ctx, "request", 0.0, request=0)
        fl.end(ctx.root, 0.0)
        ctx.flags.update({"fault", "failover"})
        fl.finish(ctx, 0.0)
        # A flood of merely-slow traces fills and churns the cap...
        for i in range(1, 20):
            slow = fl.mint()
            slow.root = fl.start(slow, "request", 0.0, request=i)
            fl.end(slow.root, 0.0)
            slow.flags.add("slow")
            fl.finish(slow, 0.0)
        # ...but the critical failover trace survives it.
        assert fl.retained_count == 4
        assert fl.trace_for_request(0) is not None
        assert fl.request_ids("failover") == [0]
        assert fl.stats()["retained_critical"] == 1

    def test_cap_holds_even_for_interesting_floods(self):
        fl = FlightRecorder(head_sample_every=0, max_retained=2)
        for i in range(5):
            ctx = fl.mint()
            ctx.root = fl.start(ctx, "request", 0.0, request=i)
            fl.end(ctx.root, 0.0)
            ctx.flags.add("fault")
            fl.finish(ctx, 0.0)
        assert fl.retained_count == 2
        # Oldest interesting traces were evicted, newest survive.
        assert fl.trace_for_request(4) is not None

    def test_request_ids_filter_by_flag(self):
        fl = FlightRecorder(head_sample_every=0)
        for i, flag in enumerate(("fault", "failover", "failover")):
            ctx = fl.mint()
            ctx.root = fl.start(ctx, "request", 0.0, request=i)
            fl.end(ctx.root, 0.0)
            ctx.flags.add(flag)
            fl.finish(ctx, 0.0)
        assert fl.request_ids("failover") == [1, 2]
        assert len(fl.request_ids()) == 3

    def test_write_and_load_round_trip(self, tmp_path):
        fl = FlightRecorder(head_sample_every=1)
        ctx = fl.mint()
        ctx.root = fl.start(ctx, "request", 0.0, request=3)
        fl.end(ctx.root, 1.0)
        fl.finish(ctx, 1.0)
        fl.device_event(0, "busy", 0.0, 1.0, label="k")
        path = tmp_path / "flight.json"
        doc = fl.write(str(path))
        loaded = load_flight(str(path))
        assert loaded == __import__("json").loads(
            __import__("json").dumps(doc)
        )
        assert loaded["traces"][0]["request_id"] == 3
        assert loaded["device_events"][0]["kind"] == "busy"


class TestDeviceProfiler:
    def _events(self):
        return [
            DeviceEvent(0, "busy", 0.0, 0.6, "k"),
            DeviceEvent(0, "transfer", 0.6, 0.8, "d2h"),
            DeviceEvent(1, "wedged", 0.0, 1.0, "hang"),
        ]

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown device track kind"):
            FlightRecorder().device_event(0, "sleeping", 0.0, 1.0)

    def test_utilization_folds_tracks_and_idle(self):
        util = device_utilization(self._events())
        assert util[0]["busy"] == pytest.approx(0.6)
        assert util[0]["transfer"] == pytest.approx(0.2)
        assert util[0]["idle"] == pytest.approx(0.2)
        assert util[0]["utilization"] == pytest.approx(0.6)
        assert util[1]["wedged"] == pytest.approx(1.0)
        assert util[1]["idle"] == pytest.approx(0.0)

    def test_chrome_rows_name_device_threads(self):
        doc = device_chrome_trace(self._events())
        meta = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert meta == {0: "device-0", 1: "device-1"}
        rows = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {r["name"] for r in rows} == {
            "device.busy", "device.transfer", "device.wedged",
        }

    def test_gantt_paints_priority_and_idle(self):
        text = render_gantt(self._events(), width=10)
        lines = text.splitlines()
        assert lines[1].startswith("device-0")
        assert "#" in lines[1] and "=" in lines[1]
        assert set(lines[2].split("|")[1]) == {"X"}
        assert render_gantt([]) == "(no device events)"


class TestHistogramExemplars:
    def test_observe_without_trace_keeps_exemplars_unallocated(self):
        h = Histogram()
        h.observe(5.0)
        assert h.exemplars is None
        assert "exemplars" not in h.summary()

    def test_exemplars_land_in_the_value_bucket(self):
        h = Histogram()
        h.observe(3.0, "t1")  # bucket le_4
        h.observe(100.0, "t2")  # bucket le_128
        summary = h.summary()
        assert summary["exemplars"]["le_4"] == [
            {"value": 3.0, "trace_id": "t1"}
        ]
        assert summary["exemplars"]["le_128"][0]["trace_id"] == "t2"

    def test_reservoir_overwrites_deterministically(self):
        h = Histogram()
        for i in range(10):
            h.observe(3.0, f"t{i}")
        slots = h.exemplars[2]  # le_4
        assert len(slots) == Histogram.EXEMPLARS_PER_BUCKET
        # Rotating overwrite keeps the freshest samples, reproducibly.
        assert {t for _, t in slots} == {"t6", "t7", "t8", "t9"}

    def test_exemplars_for_resolves_the_percentile_bucket(self):
        h = Histogram()
        for _ in range(99):
            h.observe(1.0, "fast")
        h.observe(1000.0, "slow-trace")
        assert h.percentile_bucket(99.9) == 10  # le_1024
        assert h.exemplars_for(99.9) == [(1000.0, "slow-trace")]
        # The median bucket resolves to the fast traces instead.
        assert all(t == "fast" for _, t in h.exemplars_for(50))
        assert Histogram().exemplars_for(99) == []
        assert Histogram().percentile_bucket(99) is None


class TestWindowExemplars:
    def test_worst_tagged_samples_come_back_first(self):
        w = Window(10.0)
        w.observe(0.0, 5.0, "a")
        w.observe(1.0, 9.0, "b")
        w.observe(2.0, 7.0)  # untagged: invisible to exemplars
        w.observe(3.0, 8.0, "c")
        assert w.exemplars(k=2) == [(9.0, "b"), (8.0, "c")]
        assert w.values() == [5.0, 9.0, 7.0, 8.0]

    def test_exemplars_age_out_with_the_window(self):
        w = Window(1.0)
        w.observe(0.0, 99.0, "old")
        w.observe(5.0, 1.0, "new")
        assert w.exemplars(now=5.0) == [(1.0, "new")]

    def test_alert_carries_exemplars_at_fire_time(self):
        from repro.obs.monitor import SloMonitor, SloRule

        monitor = SloMonitor(
            [
                SloRule(
                    name="lat", series="s", stat="max",
                    threshold=10.0, window_s=1.0,
                )
            ]
        )
        monitor.observe("s", 0.0, 50.0, "worst")
        monitor.observe("s", 0.1, 20.0, "bad")
        fired = monitor.evaluate(0.2)
        assert fired and fired[0].exemplars[0] == (50.0, "worst")
        assert fired[0].to_dict()["exemplars"][0]["trace_id"] == "worst"


class TestRecorderValidation:
    def test_bad_config_is_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(head_sample_every=-1)
        with pytest.raises(ValueError):
            FlightRecorder(max_retained=0)
