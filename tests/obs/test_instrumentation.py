"""End-to-end instrumentation: the obs layer wired through the stack."""

import numpy as np
import pytest

from repro import obs
from repro.cuda import CudaMachine, global_
from repro.cupp import ConstRef, Device, DeviceVector, Kernel, Ref, Vector
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st


@pytest.fixture
def dev() -> Device:
    return Device(machine=CudaMachine([scaled_arch("t", 2, memory_bytes=1 << 22)]))


@global_
def saxpy_kernel(ctx, a: float, x: ConstRef[DeviceVector], y: Ref[DeviceVector]):
    """y <- a*x + y (x const: copy-back elided)."""
    i = ctx.global_thread_id
    if i < len(x):
        xi = yield ld(x.view, i)
        yi = yield ld(y.view, i)
        yield op(OpClass.FMAD)
        yield st(y.view, i, a * xi + yi)


def _vectors(n=64):
    x = Vector(np.linspace(0, 1, n, dtype=np.float32))
    y = Vector(np.ones(n, dtype=np.float32))
    return x, y


class TestLedgerMatchesLazyCopying:
    def test_const_ref_call_records_elision_and_moves_nothing_back(self, dev):
        x, y = _vectors()
        saxpy = Kernel(saxpy_kernel, 2, 32)
        with obs.capture() as cap:
            saxpy(dev, 2.0, x, y)
        skipped = cap.ledger["bytes_by_cause"]["copy-back-skipped-const"]
        assert skipped > 0
        # Attributed, not moved: elided bytes never show up as traffic.
        assert cap.ledger["moved_bytes_by_direction"].get("none", 0) == 0
        assert cap.ledger["bytes_saved"] >= skipped

    def test_second_launch_uploads_nothing(self, dev):
        x, y = _vectors()
        saxpy = Kernel(saxpy_kernel, 2, 32)
        saxpy(dev, 2.0, x, y)
        with obs.capture() as cap:
            saxpy(dev, 2.0, x, y)
        # Lazy copying (§4.6): data already on the device, zero h2d bytes.
        assert cap.ledger["moved_bytes_by_direction"].get("h2d", 0) == 0

    def test_host_read_is_a_lazy_miss_download(self, dev):
        x, y = _vectors(n=32)
        saxpy = Kernel(saxpy_kernel, 1, 32)
        saxpy(dev, 2.0, x, y)
        with obs.capture() as cap:
            y.to_numpy()
        assert cap.ledger["bytes_by_cause"]["lazy-miss"] == 32 * 4
        assert cap.ledger["moved_bytes_by_direction"]["d2h"] == 32 * 4


class TestTraceNesting:
    def test_kernel_span_contains_launch_and_transfers(self, dev):
        x, y = _vectors()
        saxpy = Kernel(saxpy_kernel, 2, 32)
        with obs.capture() as cap:
            saxpy(dev, 2.0, x, y)
        by_name = {}
        for ev in cap.events:
            by_name.setdefault(ev.name, ev)
        kernel = by_name["kernel:saxpy_kernel"]
        assert kernel.kind == "span" and kernel.depth == 0
        assert kernel.args["stats"]["elided_writebacks"] == 1
        launch = by_name["cuda.launch:saxpy_kernel"]
        assert launch.parent == "kernel:saxpy_kernel" and launch.depth == 1
        elide = by_name["transfer:copy-back-skipped-const"]
        assert elide.kind == "instant"
        assert elide.parent == "kernel:saxpy_kernel"
        # Uploads happen during argument handling, inside the kernel span.
        assert by_name["transfer:lazy-miss"].depth >= 1


class TestBackCompatCounters:
    def test_vector_counters_read_through_registry(self, dev):
        x, y = _vectors()
        saxpy = Kernel(saxpy_kernel, 2, 32)
        assert (x.uploads, x.downloads) == (0, 0)
        saxpy(dev, 2.0, x, y)
        assert x.uploads == 1 and y.uploads == 1
        y.to_numpy()
        assert y.downloads == 1
        snap = obs.get_metrics().snapshot()
        assert snap["counters"]["cupp.vector.uploads"] >= 2
        assert snap["counters"]["cupp.vector.downloads"] >= 1

    def test_call_stats_fields_backed_by_metrics(self, dev):
        x, y = _vectors()
        saxpy = Kernel(saxpy_kernel, 2, 32)
        stats = saxpy(dev, 2.0, x, y)
        assert stats.value_copies == 1  # the scalar a
        assert stats.elided_writebacks == 1  # const x
        assert stats.writebacks == 1  # mutable y's struct
        assert stats.as_dict()["elided_writebacks"] == 1
        snap = obs.get_metrics().snapshot()
        assert snap["counters"]["cupp.kernel.elided_writebacks"] == 1
        assert snap["counters"]["cupp.kernel.launches{kernel=saxpy_kernel}"] == 1

    def test_call_stats_setters_still_work(self):
        from repro.cupp.kernel import CallStats

        stats = CallStats(value_copies=2)
        assert stats.value_copies == 2
        stats.writebacks = 5
        assert stats.writebacks == 5
        with pytest.raises(TypeError):
            CallStats(bogus=1)

    def test_zero_overhead_when_disabled(self, dev):
        x, y = _vectors()
        saxpy = Kernel(saxpy_kernel, 2, 32)
        assert not obs.enabled()
        saxpy(dev, 2.0, x, y)
        assert obs.get_tracer().events() == []
        # The ledger still attributes (it is cheap bookkeeping) but keeps
        # no per-entry records unless asked to.
        assert obs.get_ledger().entries == ()


class TestSatellites:
    def test_instruction_profile_summary_reports_bank_conflicts(self):
        from repro.simgpu.profile import InstructionProfile

        prof = InstructionProfile()
        prof.shared_bank_conflicts = 7
        assert prof.summary()["shared_bank_conflicts"] == 7

    def test_stage_profile_merge_matches_instruction_profile_api(self):
        from repro.steer.profiler import StageProfile

        a = StageProfile()
        a.add("steering", 10.0)
        b = StageProfile()
        b.add("steering", 5.0)
        b.add("modification", 2.0)
        out = a.merge(b)  # in-place, like InstructionProfile.merge
        assert out is None
        assert a.cycles["steering"] == 15.0
        assert a.cycles["modification"] == 2.0

    def test_stage_profile_merged_is_non_mutating_wrapper(self):
        from repro.steer.profiler import StageProfile

        a = StageProfile()
        a.add("steering", 10.0)
        b = StageProfile()
        b.add("steering", 5.0)
        c = a.merged(b)
        assert c.cycles["steering"] == 15.0
        assert a.cycles["steering"] == 10.0  # untouched

    def test_bench_observed_attaches_capture(self):
        from repro.bench.harness import run_fig_1_1

        plain = run_fig_1_1()
        assert plain.capture is None  # tracing off: no overhead
        obs.enable_tracing()
        traced = run_fig_1_1()
        assert traced.capture is not None
        assert traced.dump_observability.__doc__  # has the dump API

    def test_bench_trace_flag_writes_files(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["--trace", str(tmp_path), "fig-1.1"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1.1" in out
        assert (tmp_path / "fig-1.1.trace.json").exists()
        assert (tmp_path / "fig-1.1.metrics.json").exists()
