"""The analyzer's memory section: allocator causes grouped apart from
bus traffic in single-run reports, rollups, and diffs."""

from __future__ import annotations

from repro import obs
from repro.obs.analyze import (
    Analysis,
    analyze,
    diff,
    ledger_rollup,
    memory_rollup,
    render_analysis,
    render_diff,
)
from repro.obs.ledger import MEMORY_CAUSES, TransferRecord
from repro.obs.tracer import TraceEvent


def _instant(name, ts, **args):
    return TraceEvent(
        name=name,
        kind="instant",
        ts=ts,
        dur=0.0,
        tid=0,
        depth=0,
        parent=None,
        args=args,
    )


def _span(name, ts, dur):
    return TraceEvent(
        name=name, kind="span", ts=ts, dur=dur, tid=0, depth=0, parent=None
    )


def test_memory_causes_cover_the_allocator_vocabulary():
    assert set(MEMORY_CAUSES) == {
        "vector-realloc",
        "pool-hit",
        "pool-miss",
        "pool-trim",
        "oom-flush",
    }


def test_analyze_collects_memory_instants():
    events = [
        _span("run", 0.0, 10.0),
        _instant("transfer:pool-hit", 1.0, nbytes=1024),
        _instant("transfer:pool-hit", 2.0, nbytes=2048),
        _instant("transfer:pool-miss", 3.0, nbytes=4096),
        _instant("transfer:eager", 4.0, nbytes=999),  # bus traffic: excluded
        _instant("checkpoint", 5.0),  # unrelated instant: excluded
    ]
    analysis = analyze(events)
    assert analysis.memory == {
        "pool-hit": {"count": 2, "bytes": 3072},
        "pool-miss": {"count": 1, "bytes": 4096},
    }
    assert analysis.to_dict()["memory"] == analysis.memory


def test_analyze_from_live_pool_activity():
    obs.reset()
    obs.enable_tracing()
    obs.record_transfer("pool-miss", "none", 512, moved=False, label="t")
    obs.record_transfer("pool-hit", "none", 512, moved=False, label="t")
    analysis = analyze(obs.get_tracer().events())
    assert analysis.memory["pool-hit"] == {"count": 1, "bytes": 512}
    assert analysis.memory["pool-miss"] == {"count": 1, "bytes": 512}
    obs.reset()


def test_memory_rollup_splits_allocator_from_bus_causes():
    entries = [
        TransferRecord("eager", "h2d", 100, True, "a", ts=1.0),
        TransferRecord("pool-hit", "none", 1024, False, "p", ts=2.0),
        TransferRecord("oom-flush", "none", 4096, False, "p", ts=3.0),
        TransferRecord("vector-realloc", "h2d", 64, True, "v", ts=4.0),
    ]
    flat = ledger_rollup(entries)
    split = memory_rollup(flat)
    assert set(split["transfers"]) == {"eager"}
    assert set(split["memory"]) == {"pool-hit", "oom-flush", "vector-realloc"}
    # The flat per-cause rows pass through unchanged.
    assert split["memory"]["pool-hit"] is flat["pool-hit"]
    assert split["transfers"]["eager"] is flat["eager"]


def test_diff_reports_memory_deltas():
    a = analyze([_instant("transfer:pool-hit", 1.0, nbytes=100)])
    b = analyze(
        [
            _instant("transfer:pool-hit", 1.0, nbytes=300),
            _instant("transfer:pool-hit", 2.0, nbytes=300),
            _instant("transfer:pool-trim", 3.0, nbytes=50),
        ]
    )
    rows = {row["cause"]: row for row in diff(a, b)["memory"]}
    assert rows["pool-hit"] == {
        "cause": "pool-hit",
        "count_a": 1,
        "count_b": 2,
        "bytes_a": 100,
        "bytes_b": 600,
    }
    assert rows["pool-trim"]["count_a"] == 0
    assert rows["pool-trim"]["bytes_b"] == 50


def test_render_analysis_includes_memory_table_only_when_present():
    with_memory = analyze(
        [
            _span("run", 0.0, 1.0),
            _instant("transfer:pool-hit", 0.5, nbytes=4096),
        ]
    )
    text = render_analysis(with_memory)
    assert "memory (allocator causes)" in text
    assert "pool-hit" in text and "4,096" in text
    without = analyze([_span("run", 0.0, 1.0)])
    assert "memory (allocator causes)" not in render_analysis(without)


def test_render_diff_includes_memory_table_only_when_present():
    a = analyze([_instant("transfer:oom-flush", 1.0, nbytes=10)])
    b = Analysis()
    text = render_diff(diff(a, b))
    assert "memory (allocator causes, A vs B)" in text
    assert "oom-flush" in text
    empty = render_diff(diff(Analysis(), Analysis()))
    assert "memory (allocator causes, A vs B)" not in empty
