"""repro.obs.metrics + repro.obs.ledger: registry semantics, attribution."""

import pytest

from repro import obs
from repro.obs.ledger import TransferLedger
from repro.obs.metrics import MetricsRegistry


class TestMetricsRegistry:
    def test_counter_interned_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", kind="read")
        b = reg.counter("hits", kind="read")
        c = reg.counter("hits", kind="write")
        assert a is b and a is not c
        a.inc(3)
        assert reg.counter("hits", kind="read").value == 3
        assert c.value == 0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        assert reg.counter("m", a=1, b=2) is reg.counter("m", b=2, a=1)

    def test_snapshot_renders_label_series(self):
        reg = MetricsRegistry()
        reg.counter("bytes", cause="eager", direction="h2d").inc(10)
        reg.gauge("live").set(4)
        reg.histogram("lat").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"]["bytes{cause=eager,direction=h2d}"] == 10
        assert snap["gauges"]["live"] == 4
        assert snap["histograms"]["lat"]["count"] == 1

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        for v in (1, 2, 4, 8):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min"] == 1 and s["max"] == 8
        assert h.mean == pytest.approx(3.75)

    def test_reset_clears_all_series(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestTransferLedger:
    def test_totals_by_cause_and_direction(self):
        led = TransferLedger()
        led.record("eager", "h2d", 100)
        led.record("lazy-miss", "h2d", 50)
        led.record("copy-back", "d2h", 25)
        assert led.bytes_for("eager") == 100
        assert led.count_for("lazy-miss") == 1
        assert led.moved_bytes("h2d") == 150
        assert led.moved_bytes() == 175

    def test_elided_bytes_count_as_saved_not_moved(self):
        led = TransferLedger()
        led.record("copy-back-skipped-const", "none", 64, moved=False)
        assert led.bytes_for("copy-back-skipped-const") == 64
        assert led.moved_bytes() == 0
        assert led.bytes_saved == 64

    def test_unknown_cause_or_direction_rejected(self):
        led = TransferLedger()
        with pytest.raises(ValueError):
            led.record("mystery", "h2d", 1)
        with pytest.raises(ValueError):
            led.record("eager", "sideways", 1)

    def test_delta_since_isolates_a_window(self):
        led = TransferLedger()
        led.record("eager", "h2d", 10)
        before = led.snapshot()
        led.record("eager", "h2d", 5)
        delta = led.delta_since(before)
        assert delta["bytes_by_cause"]["eager"] == 5
        assert delta["count_by_cause"]["eager"] == 1

    def test_entry_retention_is_opt_in(self):
        led = TransferLedger()
        led.record("eager", "h2d", 1)
        assert led.entries == ()
        led.keep_entries = True
        led.record("eager", "h2d", 2)
        (entry,) = led.entries
        assert entry.nbytes == 2 and entry.cause == "eager"


class TestRecordTransferFunnel:
    def test_updates_ledger_metrics_and_trace(self):
        obs.enable_tracing()
        obs.record_transfer("lazy-miss", "h2d", 256, label="vector")
        assert obs.get_ledger().bytes_for("lazy-miss") == 256
        snap = obs.get_metrics().snapshot()
        key = "repro.transfer.bytes{cause=lazy-miss,direction=h2d}"
        assert snap["counters"][key] == 256
        (ev,) = obs.get_tracer().events()
        assert ev.name == "transfer:lazy-miss"
        assert ev.args["nbytes"] == 256 and ev.args["moved"] is True

    def test_disabled_tracing_still_feeds_ledger_and_metrics(self):
        obs.record_transfer("copy-back", "d2h", 32)
        assert obs.get_ledger().bytes_for("copy-back") == 32
        assert obs.get_tracer().events() == []

    def test_reset_clears_the_trio(self):
        obs.enable_tracing()
        obs.record_transfer("eager", "h2d", 8)
        obs.reset()
        assert not obs.enabled()
        assert obs.get_ledger().moved_bytes() == 0
        assert obs.get_metrics().snapshot()["counters"] == {}


class TestRegistryReentrancy:
    def test_finalizer_can_reenter_the_registry(self):
        # A GC pass can run Device.__del__ — which publishes pool gauges
        # — while the registry lock is already held by this thread (the
        # collector fires inside instrument construction).  Reproduce
        # that reentrancy deterministically: the factory drops the last
        # reference to an object whose finalizer hits the registry.
        import threading

        from repro.obs.metrics import Histogram, MetricsRegistry

        reg = MetricsRegistry()
        state = {}

        class NoisyFinalizer:
            def __del__(self):
                reg.gauge("reentrant.gauge").set(1.0)

        state["holder"] = NoisyFinalizer()

        def factory():
            del state["holder"]  # __del__ runs here, lock already held
            return Histogram()

        # Run in a worker so a regression deadlocks the thread, not the
        # whole test session.
        worker = threading.Thread(
            target=lambda: reg._get(reg._histograms, factory, "h", {}),
            daemon=True,
        )
        worker.start()
        worker.join(timeout=5.0)
        assert not worker.is_alive(), "registry deadlocked on reentry"
        assert reg.gauge("reentrant.gauge").value == 1.0


class TestHistogramPercentile:
    def test_empty_returns_zero(self):
        from repro.obs.metrics import Histogram

        assert Histogram().percentile(99) == 0.0

    def test_out_of_range_q_rejected(self):
        from repro.obs.metrics import Histogram

        h = Histogram()
        h.observe(1)
        import pytest

        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_single_sample_every_percentile(self):
        from repro.obs.metrics import Histogram

        h = Histogram()
        h.observe(5)
        for q in (0, 50, 99, 100):
            assert h.percentile(q) == 5.0

    def test_single_occupied_bucket_extreme_quantiles(self):
        # q=0 and q=100 must clamp to the observed extremes, not the
        # bucket's power-of-two bounds, when one bucket holds everything.
        from repro.obs.metrics import Histogram

        h = Histogram()
        for v in (33, 35, 38):  # all land in the (32, 64] bucket
            h.observe(v)
        assert sum(1 for n in h.buckets if n) == 1
        assert h.percentile(0) == 33
        assert h.percentile(100) == 38
        assert 33 <= h.percentile(50) <= 38

    def test_percentiles_are_monotone_and_clamped(self):
        from repro.obs.metrics import Histogram

        h = Histogram()
        for v in (1, 2, 4, 8, 100, 1000):
            h.observe(v)
        estimates = [h.percentile(q) for q in (10, 50, 90, 99, 100)]
        assert estimates == sorted(estimates)
        assert h.min <= estimates[0]
        assert estimates[-1] <= h.max
        assert h.percentile(100) == 1000

    def test_interpolates_within_a_bucket(self):
        from repro.obs.metrics import Histogram

        h = Histogram()
        for _ in range(100):
            h.observe(100)  # all samples in the (64, 128] bucket
        # Any percentile must land inside the bucket, clamped to the data.
        assert h.percentile(50) == 100.0


class TestServingMetricHelpers:
    def test_queue_depth_gauge_is_the_canonical_series(self):
        g = obs.queue_depth_gauge("serve")
        g.set(7)
        snap = obs.get_metrics().snapshot()
        assert snap["gauges"]["repro.queue.depth{component=serve}"] == 7

    def test_queue_depth_gauge_interned_per_component(self):
        assert obs.queue_depth_gauge("a") is obs.queue_depth_gauge("a")
        assert obs.queue_depth_gauge("a") is not obs.queue_depth_gauge("b")

    def test_batch_size_histogram_series_and_summary(self):
        h = obs.batch_size_histogram("serve")
        for size in (1, 4, 32):
            h.observe(size)
        snap = obs.get_metrics().snapshot()
        summary = snap["histograms"]["repro.batch.size{component=serve}"]
        assert summary["count"] == 3
        assert summary["min"] == 1 and summary["max"] == 32

    def test_helpers_accept_extra_labels(self):
        obs.queue_depth_gauge("serve", device="gpu0").set(1)
        snap = obs.get_metrics().snapshot()
        assert any(
            k.startswith("repro.queue.depth") and "device=gpu0" in k
            for k in snap["gauges"]
        )

    def test_request_latency_histogram_is_the_canonical_series(self):
        h = obs.request_latency_histogram("serve")
        h.observe(1500)  # microseconds
        snap = obs.get_metrics().snapshot()
        summary = snap["histograms"]["repro.request.latency{component=serve}"]
        assert summary["count"] == 1 and summary["max"] == 1500
        assert obs.request_latency_histogram("serve") is h

    def test_request_outcome_counter_is_labeled_per_outcome(self):
        obs.request_outcome_counter("serve", "done").inc()
        obs.request_outcome_counter("serve", "rejected").inc(2)
        counters = obs.get_metrics().snapshot()["counters"]
        assert (
            counters["repro.request.outcome{component=serve,outcome=done}"]
            == 1
        )
        assert (
            counters[
                "repro.request.outcome{component=serve,outcome=rejected}"
            ]
            == 2
        )


class TestLedgerTimestamps:
    """Regression: entries must carry real timestamps without tracing."""

    def test_entries_are_timestamped_when_tracing_is_disabled(self):
        obs.get_ledger().keep_entries = True
        assert not obs.enabled()
        obs.record_transfer("eager", "h2d", 1)
        obs.record_transfer("copy-back", "d2h", 2)
        first, second = obs.get_ledger().entries
        assert first.ts > 0.0
        assert second.ts >= first.ts

    def test_timestamps_match_tracing_enabled_behaviour(self):
        obs.get_ledger().keep_entries = True
        obs.enable_tracing()
        obs.record_transfer("eager", "h2d", 1)
        (entry,) = obs.get_ledger().entries
        assert entry.ts > 0.0
