"""repro.obs.monitor + metrics.Window: sliding windows, SLO alerting."""

import pytest

from repro.obs.metrics import Window
from repro.obs.monitor import Alert, SloMonitor, SloRule


class TestWindow:
    def test_rejects_non_positive_horizon(self):
        with pytest.raises(ValueError):
            Window(0.0)

    def test_prunes_samples_older_than_horizon(self):
        w = Window(1.0)
        w.observe(0.0, 10.0)
        w.observe(0.9, 20.0)
        w.observe(1.8, 30.0)  # pushes the t=0.0 sample out
        assert w.values() == [20.0, 30.0]
        assert w.count() == 2
        assert w.mean() == 25.0
        assert w.max() == 30.0

    def test_explicit_now_advances_the_cutoff(self):
        w = Window(1.0)
        w.observe(0.0, 1.0)
        w.observe(0.2, 2.0)
        assert w.count() == 2
        assert w.count(now=1.1) == 1  # virtual time moved on, no new sample
        assert w.values(now=5.0) == []

    def test_percentile_interpolates(self):
        w = Window(100.0)
        for ts, value in enumerate([1.0, 2.0, 3.0, 4.0]):
            w.observe(float(ts), value)
        assert w.percentile(0) == 1.0
        assert w.percentile(50) == 2.5
        assert w.percentile(100) == 4.0
        assert Window(1.0).percentile(99) == 0.0


class TestSloRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            SloRule("r", "s", "p42", 1.0, 1.0)
        with pytest.raises(ValueError):
            SloRule("r", "s", "p99", 1.0, 0.0)
        with pytest.raises(ValueError):
            SloRule("r", "s", "p99", 1.0, 1.0, short_window_s=2.0)

    def test_duplicate_rule_names_rejected(self):
        rule = SloRule("r", "s", "max", 1.0, 1.0)
        with pytest.raises(ValueError):
            SloMonitor([rule, rule])


class TestSloMonitor:
    def _monitor(self, **kw):
        defaults = dict(
            name="lat-p99",
            series="lat",
            stat="p99",
            threshold=100.0,
            window_s=10.0,
            min_count=2,
        )
        defaults.update(kw)
        return SloMonitor([SloRule(**defaults)])

    def test_fires_on_breach_and_clears_on_recovery(self):
        mon = self._monitor()
        fired, cleared = [], []
        mon.on_fire(fired.append)
        mon.on_clear(cleared.append)

        mon.observe("lat", 0.0, 50.0)
        assert mon.evaluate(0.0) == []  # below min_count
        mon.observe("lat", 1.0, 500.0)
        (alert,) = mon.evaluate(1.0)
        assert alert.rule == "lat-p99" and alert.active
        assert alert.value > 100.0
        assert mon.evaluate(1.5) == []  # steady state: no re-fire
        assert fired == [alert]

        # The slow samples age out of the 10 s window -> alert clears.
        mon.observe("lat", 12.0, 10.0)
        mon.observe("lat", 12.5, 10.0)
        (transition,) = mon.evaluate(12.5)
        assert transition is alert and not alert.active
        assert alert.cleared_at == 12.5
        assert cleared == [alert]
        assert mon.active == [] and mon.fired("lat-p99")

    def test_min_count_suppresses_early_noise(self):
        mon = self._monitor(min_count=5)
        for ts in range(4):
            mon.observe("lat", float(ts), 10_000.0)
            assert mon.evaluate(float(ts)) == []
        mon.observe("lat", 4.0, 10_000.0)
        assert len(mon.evaluate(4.0)) == 1

    def test_observe_routes_by_series(self):
        mon = self._monitor(min_count=1)
        mon.observe("unrelated", 0.0, 10_000.0)
        assert mon.evaluate(0.0) == []

    def test_burn_rate_needs_both_windows(self):
        mon = self._monitor(
            stat="mean", window_s=10.0, short_window_s=2.0, min_count=1
        )
        # Sustained breach: long and short windows both over threshold.
        for ts in (0.0, 1.0, 2.0):
            mon.observe("lat", ts, 400.0)
        assert len(mon.evaluate(2.0)) == 1

        # Burn ends: recent samples healthy.  The long window still
        # averages over threshold, but the short window has recovered,
        # so the alert clears fast instead of lingering for 10 s.
        for ts in (3.0, 3.5, 4.0, 4.5):
            mon.observe("lat", ts, 1.0)
        long_mean = (3 * 400.0 + 4 * 1.0) / 7
        assert long_mean > 100.0
        (transition,) = mon.evaluate(4.5)
        assert not transition.active

    def test_ratio_stat_tracks_miss_fraction(self):
        rule = SloRule(
            "miss", "outcome", "ratio", 0.25, window_s=10.0, min_count=4
        )
        mon = SloMonitor([rule])
        for ts, miss in enumerate([0.0, 0.0, 1.0, 1.0]):
            mon.observe("outcome", float(ts), miss)
        (alert,) = mon.evaluate(3.0)  # 50% miss ratio > 25%
        assert alert.value == 0.5

    def test_to_dict_round_trips_through_json(self):
        import json

        mon = self._monitor(short_window_s=1.0)
        mon.observe("lat", 0.0, 500.0)
        mon.observe("lat", 0.1, 500.0)
        mon.evaluate(0.1)
        doc = json.loads(json.dumps(mon.to_dict()))
        assert doc["rules"][0]["name"] == "lat-p99"
        assert doc["active"] == ["lat-p99"]
        (entry,) = doc["alerts"]
        assert entry["fired_at_s"] == 0.1 and entry["cleared_at_s"] is None

    def test_alert_dataclass_activity(self):
        alert = Alert("r", "s", 1.0, 2.0, 1.5)
        assert alert.active
        alert.cleared_at = 3.0
        assert not alert.active
