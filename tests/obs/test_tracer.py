"""repro.obs.tracer: span nesting, instants, and the zero-cost off path."""

import threading

from repro import obs
from repro.obs.tracer import InMemoryRecorder, NullRecorder, Tracer


class TestSpans:
    def test_nesting_depth_and_parent(self):
        tracer = Tracer(InMemoryRecorder())
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.instant("tick", k=1)
        events = {e.name: e for e in tracer.events()}
        assert events["outer"].depth == 0 and events["outer"].parent is None
        assert events["inner"].depth == 1 and events["inner"].parent == "outer"
        assert events["tick"].kind == "instant"
        assert events["tick"].depth == 2 and events["tick"].parent == "inner"

    def test_children_recorded_before_parents(self):
        # Spans land in the recorder at exit, so completion order is
        # child-first — the exporter relies on ts/dur, not list order.
        tracer = Tracer(InMemoryRecorder())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e.name for e in tracer.events()]
        assert names == ["inner", "outer"]

    def test_span_timing_monotonic(self):
        tracer = Tracer(InMemoryRecorder())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()
        assert outer.ts <= inner.ts
        assert outer.dur >= inner.dur >= 0.0

    def test_set_merges_attrs(self):
        tracer = Tracer(InMemoryRecorder())
        with tracer.span("work", a=1) as span:
            span.set(b=2)
        (ev,) = tracer.events()
        assert ev.args == {"a": 1, "b": 2}

    def test_sibling_spans_share_parent(self):
        tracer = Tracer(InMemoryRecorder())
        with tracer.span("outer"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        events = {e.name: e for e in tracer.events()}
        assert events["first"].parent == "outer"
        assert events["second"].parent == "outer"
        assert events["first"].depth == events["second"].depth == 1

    def test_per_thread_stacks(self):
        tracer = Tracer(InMemoryRecorder())
        seen = {}

        def worker():
            with tracer.span("threaded") as span:
                seen["depth"] = span.depth

        with tracer.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The worker's span is a root on its own thread, not a child of
        # the main thread's open span.
        assert seen["depth"] == 0
        events = {e.name: e for e in tracer.events()}
        assert events["threaded"].parent is None
        assert events["threaded"].tid != events["main"].tid


class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer()
        assert not tracer.enabled
        assert tracer.span("anything", heavy="attr") is obs.NULL_SPAN
        assert tracer.span("other") is obs.NULL_SPAN  # same singleton

    def test_disabled_records_nothing(self):
        tracer = Tracer()
        with tracer.span("ghost"):
            tracer.instant("ghost-tick")
        assert tracer.events() == []

    def test_null_span_set_is_noop(self):
        with obs.NULL_SPAN as span:
            span.set(anything="goes")

    def test_enable_disable_roundtrip(self):
        tracer = Tracer()
        rec = tracer.enable()
        assert tracer.enabled and isinstance(rec, InMemoryRecorder)
        tracer.disable()
        assert not tracer.enabled
        assert isinstance(tracer.recorder, NullRecorder)

    def test_enable_keeps_provided_empty_recorder(self):
        # An empty InMemoryRecorder is falsy (__len__ == 0); enable must
        # still install that exact instance.
        tracer = Tracer()
        mine = InMemoryRecorder()
        assert tracer.enable(mine) is mine
        assert tracer.recorder is mine

    def test_global_helpers(self):
        assert not obs.enabled()
        obs.enable_tracing()
        assert obs.enabled()
        with obs.span("global-span"):
            obs.instant("global-instant")
        assert {e.name for e in obs.get_tracer().events()} == {
            "global-span",
            "global-instant",
        }
