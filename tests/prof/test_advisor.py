"""Advisor rules: evidence in, counterfactual speedups out.

The load-bearing assertions here mirror the CI ``prof-smoke`` job: v1
must produce an uncoalesced-loads finding, v5 must not, and the
low-occupancy rule's block-size suggestion must be validated by an
actual measured (virtual-clock) improvement on the sim backend.
"""

import pytest

from repro.prof.__main__ import profile_pipeline
from repro.prof.advisor import (
    LOW_OCCUPANCY,
    UNCOALESCED_MIN_SPEEDUP,
    advise,
)
from repro.prof.session import ProfSession


@pytest.fixture(scope="module")
def v1():
    return profile_pipeline(1)


@pytest.fixture(scope="module")
def v5():
    return profile_pipeline(5)


def rules(session):
    return {f"{f.rule}:{f.kernel}" for f in advise(session)}


class TestPipelineStories:
    def test_v1_fires_uncoalesced_loads(self, v1):
        assert "uncoalesced-loads:find_neighbors_v1" in rules(v1)

    def test_v5_does_not_fire_uncoalesced_loads(self, v5):
        assert not any(
            r.startswith("uncoalesced-loads:") for r in rules(v5)
        ), rules(v5)

    def test_v1_fires_low_occupancy(self, v1):
        finding = next(
            f for f in advise(v1) if f.rule == "low-occupancy"
        )
        assert finding.kernel == "find_neighbors_v1"
        assert finding.suggestion is not None
        assert finding.suggestion["threads_per_block"] > 32

    def test_findings_sorted_by_speedup(self, v1):
        findings = advise(v1)
        speedups = [f.estimated_speedup for f in findings]
        assert speedups == sorted(speedups, reverse=True)
        assert all(s > 1.0 for s in speedups)

    def test_evidence_carries_counters(self, v1):
        finding = next(
            f for f in advise(v1) if f.rule == "uncoalesced-loads"
        )
        kc = v1.kernels[finding.kernel]
        assert finding.evidence["uncoalesced_read_transactions"] == (
            kc.uncoalesced_read_transactions
        )
        assert finding.evidence["uncoalesced_read_share"] >= 0.5
        assert finding.estimated_speedup >= UNCOALESCED_MIN_SPEEDUP

    def test_to_dict_roundtrips(self, v1):
        d = advise(v1)[0].to_dict()
        assert {"rule", "kernel", "estimated_speedup", "message",
                "evidence", "suggestion"} <= set(d)


class TestBlockSizeValidation:
    def test_suggestion_is_validated_by_measurement(self, v1):
        """The acceptance criterion: the advisor's block-size suggestion
        produces an actual measured improvement on the sim backend."""
        finding = next(
            f for f in advise(v1) if f.rule == "low-occupancy"
        )
        suggested = int(finding.suggestion["threads_per_block"])
        base_s = v1.kernels[finding.kernel].modelled_s
        retuned = profile_pipeline(1, threads_per_block=suggested)
        tuned_s = retuned.kernels[finding.kernel].modelled_s
        measured = base_s / tuned_s
        assert measured > 1.0, "suggestion did not improve the kernel"
        # The estimate comes from the same perf model the clock uses,
        # so it should land close to the measurement.
        assert measured == pytest.approx(
            finding.estimated_speedup, rel=0.15
        )

    def test_low_occupancy_quiet_at_high_occupancy(self):
        # 128 threads/block reaches 24 warps/MP on this arch — the rule
        # has nothing to suggest.
        session = profile_pipeline(5, threads_per_block=128)
        for kc in session.kernels.values():
            assert kc.achieved_occupancy >= LOW_OCCUPANCY
        assert not any(
            f.rule == "low-occupancy" for f in advise(session)
        )


class TestModelledOnlyRows:
    def test_serve_rows_produce_no_findings(self):
        from repro.gpusteer.cost_model import (
            LaunchGeometry,
            WorkloadStats,
            neighbor_v1_cost,
        )
        from repro.simgpu.arch import G80_8800GTS
        from repro.steer.params import DEFAULT_PARAMS

        stats = WorkloadStats.estimate(128, DEFAULT_PARAMS, 1.0)
        inputs = neighbor_v1_cost(LaunchGeometry(128, 32), stats)
        session = ProfSession()
        session.record_modelled(
            "find_neighbors_v1", "sim", inputs, arch=G80_8800GTS
        )
        assert session.kernels["find_neighbors_v1"].modelled_only
        assert advise(session) == []
