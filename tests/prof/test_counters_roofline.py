"""KernelCounters record-keeping and roofline placement."""

import pytest

from repro.prof.counters import (
    KernelCounters,
    counters_from_cost_inputs,
    counters_from_profile,
)
from repro.prof.roofline import roofline, roofline_point
from repro.simgpu.arch import G80_8800GTS
from repro.simgpu.perfmodel import KernelCostInputs


def make_counters(**overrides) -> KernelCounters:
    base = dict(
        name="k",
        backend="sim",
        launches=1,
        warp_size=32,
        flops=1000,
        bytes_moved=64_000,
        modelled_s=1e-5,
        peak_gflops=G80_8800GTS.peak_gflops,
        memory_bandwidth_bytes_per_s=(
            G80_8800GTS.memory_bandwidth_bytes_per_s
        ),
    )
    base.update(overrides)
    return KernelCounters(**base)


class TestKernelCounters:
    def test_thread_flops_scale_by_warp_size(self):
        assert make_counters(flops=10).thread_flops == 320

    def test_merge_sums_counters_and_tracks_config(self):
        a = make_counters(instructions=10, uncoalesced_read_bytes=100)
        b = make_counters(instructions=5, uncoalesced_read_bytes=50,
                          threads_per_block=64)
        a.merge(b)
        assert a.launches == 2
        assert a.instructions == 15
        assert a.uncoalesced_read_bytes == 150
        assert a.threads_per_block == 64

    def test_merge_mixed_backend(self):
        a, b = make_counters(), make_counters(backend="native")
        a.merge(b)
        assert a.backend == "mixed"

    def test_hit_rates_none_without_accesses(self):
        kc = make_counters()
        assert kc.constant_hit_rate is None
        assert kc.texture_hit_rate is None
        assert make_counters(
            constant_hits=3, constant_misses=1
        ).constant_hit_rate == pytest.approx(0.75)

    def test_to_dict_has_every_field(self):
        import dataclasses

        d = make_counters().to_dict()
        for f in dataclasses.fields(KernelCounters):
            assert f.name in d, f"to_dict omits {f.name}"

    def test_from_cost_inputs_is_modelled_only(self):
        inputs = KernelCostInputs(
            blocks=4, threads_per_block=32, issue_cycles=1000,
            global_reads=64, bytes_moved=8192,
        )
        kc = counters_from_cost_inputs(
            "m", "sim", inputs, arch=G80_8800GTS, modelled_s=1e-5
        )
        assert kc.modelled_only
        assert kc.modelled_s == pytest.approx(1e-5)
        assert kc.occupancy_warps_per_mp > 0
        assert kc.bound_by in ("memory", "issue")


class TestRoofline:
    def test_memory_bound_left_of_ridge(self):
        # 1000 warp flops over 64 KB: AI = 32000/64000 = 0.5 flop/B,
        # left of the G80 ridge (peak/bandwidth = 230.4/64 = 3.6).
        point = roofline_point(make_counters())
        assert point is not None
        assert point.arithmetic_intensity == pytest.approx(0.5)
        assert point.bound == "memory"
        assert point.attainable_gflops == pytest.approx(0.5 * 64.0)
        assert 0.0 < point.efficiency <= 1.0 + 1e-9

    def test_compute_bound_right_of_ridge(self):
        kc = make_counters(flops=1_000_000, bytes_moved=64)
        point = roofline_point(kc)
        assert point.bound == "compute"
        assert point.attainable_gflops == pytest.approx(kc.peak_gflops)

    def test_no_traffic_means_compute_roof(self):
        point = roofline_point(make_counters(bytes_moved=0))
        assert point.arithmetic_intensity == float("inf")
        assert point.attainable_gflops == pytest.approx(
            G80_8800GTS.peak_gflops
        )

    def test_unplaceable_records_return_none(self):
        assert roofline_point(make_counters(modelled_only=True)) is None
        assert roofline_point(make_counters(flops=0)) is None
        assert roofline_point(make_counters(modelled_s=0.0)) is None

    def test_session_roofline_skips_unplaceable(self):
        points = roofline(
            {
                "good": make_counters(name="good"),
                "modelled": make_counters(name="modelled", modelled_only=True),
            }
        )
        assert set(points) == {"good"}


class TestProfileBuilder:
    def test_counters_mirror_profile_summary(self, device):
        import numpy as np

        from repro.simgpu.isa import ld
        from repro.simgpu.memory import DeviceArrayView

        ptr = device.memory.alloc(4 * 64)
        arr = DeviceArrayView(device.memory, ptr, np.dtype(np.float32), 64)

        def kernel(ctx, arr):
            _ = yield ld(arr, 2 * ctx.global_thread_id)

        result = device.launch(kernel, 1, 32, (arr,))
        kc = counters_from_profile(
            "k", "sim", result.profile, blocks=1, threads_per_block=32,
            arch=device.arch,
        )
        summary = result.profile.summary()
        for key in (
            "instructions", "read_transactions",
            "uncoalesced_read_transactions", "uncoalesced_read_bytes",
            "bytes_read",
        ):
            assert getattr(kc, key) == summary[key]
        assert kc.measured_s == pytest.approx(kc.modelled_s)
