"""Profiling the grid-bucketed pipeline (v6): the coalescing story.

v1's all-pairs scan streams every agent's float3 through uncoalesced
loads, so the advisor's uncoalesced-loads rule fires on it.  v6 reads
only the ~27-cell candidate neighborhood per agent — the bulk of the
traffic disappears, and with it the finding.  This is the profiler-side
evidence for the ISSUE's "grid fixes the memory story" claim.
"""

import pytest

from repro.prof.__main__ import profile_pipeline
from repro.prof.advisor import advise


@pytest.fixture(scope="module")
def v1():
    return profile_pipeline(1)


@pytest.fixture(scope="module")
def v6():
    return profile_pipeline(6)


def rules(session):
    return {f"{f.rule}:{f.kernel}" for f in advise(session)}


class TestGridCoalescingStory:
    def test_v6_does_not_fire_uncoalesced_loads(self, v6):
        assert not any(
            r.startswith("uncoalesced-loads:") for r in rules(v6)
        ), rules(v6)

    def test_v1_still_fires_for_contrast(self, v1):
        assert "uncoalesced-loads:find_neighbors_v1" in rules(v1)

    def test_grid_reads_far_fewer_bytes_than_all_pairs(self, v1, v6):
        scan_v1 = v1.kernels["find_neighbors_v1"]
        scan_v6 = v6.kernels["simulate_grid"]
        # At 128 agents the flock is dense, so the win is bounded; at
        # bench scale it grows with n (the million-boids experiment).
        assert (
            scan_v6.uncoalesced_read_bytes
            < scan_v1.uncoalesced_read_bytes / 2
        )

    def test_v6_profiles_the_expected_kernels(self, v6):
        assert set(v6.kernels) == {"simulate_grid", "modify_kernel"}
        assert v6.launch_count == 2

    def test_native_replay_agrees_on_the_story(self):
        session = profile_pipeline(6, backend="native")
        assert not any(
            r.startswith("uncoalesced-loads:") for r in rules(session)
        )
        assert set(session.kernels) == {"simulate_grid", "modify_kernel"}
