"""Report building, diffing, and the ``python -m repro.prof`` CLI."""

import json

import pytest

from repro.prof.__main__ import main, parse_target, profile_pipeline
from repro.prof.report import (
    diff_reports,
    render_diff,
    render_report,
    session_report,
)


@pytest.fixture(scope="module")
def report_v1():
    return session_report(profile_pipeline(1), label="v1")


@pytest.fixture(scope="module")
def report_v5():
    return session_report(profile_pipeline(5), label="v5")


class TestSessionReport:
    def test_shape(self, report_v1):
        assert set(report_v1) == {
            "label", "launches", "totals", "kernels", "roofline", "findings",
        }
        assert report_v1["label"] == "v1"
        assert "find_neighbors_v1" in report_v1["kernels"]
        assert "find_neighbors_v1" in report_v1["roofline"]
        assert report_v1["findings"]

    def test_json_serializable(self, report_v1):
        parsed = json.loads(json.dumps(report_v1))
        assert parsed["kernels"]["find_neighbors_v1"]["launches"] == 1

    def test_render_mentions_kernels_and_findings(self, report_v1):
        text = render_report(report_v1)
        assert "find_neighbors_v1" in text
        assert "uncoalesced-loads" in text
        assert "roofline" in text


class TestDiff:
    def test_v1_to_v5_speedup_is_attributed(self, report_v1, report_v5):
        d = diff_reports(report_v1, report_v5)
        assert d["totals"]["speedup"] > 1.0
        assert d["totals"]["verdict"] == "improved"
        # The attribution must lead with the counters that moved down the
        # most — for v1 -> v5 that is the global-memory traffic story.
        leading = [row["counter"] for row in d["attribution"][:5]]
        assert "uncoalesced_read_transactions" in leading
        assert "bytes_moved" in leading
        for row in d["attribution"]:
            if row["counter"] in ("uncoalesced_read_transactions",
                                  "read_transactions", "bytes_moved"):
                assert row["change"] < 0, row

    def test_kernel_turnover_is_reported(self, report_v1, report_v5):
        d = diff_reports(report_v1, report_v5)
        assert d["only_in_a"] == ["find_neighbors_v1"]
        assert set(d["only_in_b"]) == {"modify_kernel", "simulate_v4"}

    def test_findings_resolved(self, report_v1, report_v5):
        d = diff_reports(report_v1, report_v5)
        assert "uncoalesced-loads:find_neighbors_v1" in (
            d["findings_resolved"]
        )
        assert not any(
            f.startswith("uncoalesced-loads:")
            for f in d["findings_introduced"]
        )

    def test_render_diff(self, report_v1, report_v5):
        text = render_diff(diff_reports(report_v1, report_v5))
        assert "speedup attribution" in text
        assert "findings resolved" in text

    def test_same_report_diff_is_flat(self, report_v1):
        d = diff_reports(report_v1, report_v1)
        assert d["totals"]["speedup"] == pytest.approx(1.0)
        assert d["totals"]["verdict"] == "same"
        for entry in d["kernels"].values():
            assert entry["modelled_s"]["verdict"] == "same"


class TestCli:
    def test_parse_target(self):
        assert parse_target("v3") == ("sim", 3)
        assert parse_target("native:v1") == ("native", 1)
        assert parse_target("serve") == ("sim", "serve")
        for bad in ("v9", "foo", "cuda:v1"):
            with pytest.raises(ValueError):
                parse_target(bad)

    def test_single_target_with_json(self, tmp_path, capsys):
        out = tmp_path / "v5.json"
        code = main(["v5", "--agents", "32", "--tpb", "16",
                     "--json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["label"] == "v5"
        assert "simulate_v4" in payload["kernels"]
        assert "repro.prof — v5" in capsys.readouterr().out

    def test_diff_two_targets(self, tmp_path, capsys):
        out = tmp_path / "diff.json"
        code = main(["--diff", "v4", "v5", "--agents", "32",
                     "--tpb", "16", "--json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert set(payload) == {"a", "b", "diff"}
        assert payload["diff"]["a"] == "v4"
        assert "repro.prof diff" in capsys.readouterr().out

    def test_diff_requires_exactly_two(self, capsys):
        with pytest.raises(SystemExit):
            main(["--diff", "v1"])

    def test_bad_target_rejected_before_profiling(self, capsys):
        with pytest.raises(SystemExit):
            main(["v7"])
