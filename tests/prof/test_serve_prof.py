"""Profiling the serving plane: modelled kernel rows via the scheduler."""

import json

import pytest

from repro.prof.session import ProfSession
from repro.serve.loadgen import run_load
from repro.serve.service import ServeConfig


def small_load(prof=None, backend="sim"):
    return run_load(
        clients=4,
        duration_s=0.02,
        rate_rps=1000.0,
        seed=3,
        config=ServeConfig(physics=False, backend=backend,
                           agents_per_session=128),
        prof=prof,
    )


class TestServeProfiling:
    def test_scheduler_records_modelled_kernels(self):
        session = ProfSession()
        report = small_load(prof=session)
        assert report.completed > 0
        # v5 serving launches the simulation + modification kernels.
        assert set(session.kernels) == {"simulate_v4", "modify_kernel"}
        for kc in session.kernels.values():
            assert kc.modelled_only
            assert kc.backend == "sim"
            assert kc.launches > 0
            assert kc.modelled_s > 0

    def test_load_report_carries_the_prof_summary(self):
        report = small_load(prof=ProfSession())
        assert report.prof is not None
        assert report.prof["label"] == "serve"
        assert set(report.prof["kernels"]) == {
            "simulate_v4", "modify_kernel",
        }
        json.dumps(report.to_dict())  # JSON-clean end to end
        assert any("prof" in line for line in report.lines())

    def test_prof_none_keeps_report_identical(self):
        plain = small_load().to_dict()
        probed = small_load(prof=ProfSession()).to_dict()
        plain.pop("prof"), probed.pop("prof")
        assert plain == probed, (
            "an attached ProfSession must not change serving behaviour"
        )

    def test_modelled_rows_match_the_engine_oracle(self):
        from repro.serve.engine import StepEngine

        session = ProfSession()
        small_load(prof=session)
        engine = StepEngine()
        expected = {
            name: secs for name, _inputs, secs in engine.kernel_cost_rows(128)
        }
        launches = session.kernels["simulate_v4"].launches
        for name, kc in session.kernels.items():
            assert kc.modelled_s == pytest.approx(
                expected[name] * kc.launches
            )
        assert launches > 0
