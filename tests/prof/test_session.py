"""Session mechanics: the global hook, capture, aggregation, inertness."""

import numpy as np
import pytest

from repro.cupp.device import Device
from repro.gpusteer.emulated import EmulatedBoids
from repro.prof import hook
from repro.prof.session import ProfSession


def run_pipeline(version=1, backend="sim", session=None, steps=1, n=32):
    boids = EmulatedBoids(
        n, version, seed=5, device=Device(backend=backend),
        threads_per_block=16,
    )
    if session is None:
        for _ in range(steps):
            boids.step()
        return None
    with session:
        for _ in range(steps):
            boids.step()
    return session


class TestHook:
    def test_inactive_by_default(self):
        assert hook.active() is None

    def test_activate_deactivate_roundtrip(self):
        s = ProfSession()
        with s:
            assert hook.active() is s
        assert hook.active() is None

    def test_no_nesting(self):
        with ProfSession():
            with pytest.raises(RuntimeError):
                ProfSession().__enter__()
        assert hook.active() is None

    def test_deactivate_is_idempotent_and_owner_checked(self):
        s, other = ProfSession(), ProfSession()
        hook.activate(s)
        hook.deactivate(other)  # not the owner: no-op
        assert hook.active() is s
        hook.deactivate(s)
        assert hook.active() is None

    def test_exception_inside_session_still_detaches(self):
        with pytest.raises(ValueError):
            with ProfSession():
                raise ValueError("boom")
        assert hook.active() is None


class TestCapture:
    def test_v1_records_the_neighbor_kernel(self):
        session = run_pipeline(1, session=ProfSession())
        assert "find_neighbors_v1" in session.kernels
        kc = session.kernels["find_neighbors_v1"]
        assert kc.launches == 1
        assert kc.instructions > 0
        assert kc.modelled_s > 0
        assert session.archs["find_neighbors_v1"].warp_size == 32

    def test_v5_records_both_kernels(self):
        session = run_pipeline(5, session=ProfSession())
        assert set(session.kernels) >= {"simulate_v4", "modify_kernel"}

    def test_launches_aggregate_per_name(self):
        # Counters accumulate across launches of the same kernel name
        # (exact instruction counts differ per step — modify_kernel's
        # step_index==0 branch — so assert monotone accumulation).
        one = run_pipeline(5, session=ProfSession(), steps=1)
        two = run_pipeline(5, session=ProfSession(), steps=2)
        for name, kc in one.kernels.items():
            kc2 = two.kernels[name]
            assert kc2.launches == 2 * kc.launches
            assert kc2.instructions > kc.instructions
            assert kc2.modelled_s > kc.modelled_s

    def test_sim_measured_equals_modelled(self):
        session = run_pipeline(1, session=ProfSession())
        kc = session.kernels["find_neighbors_v1"]
        assert kc.measured_s == pytest.approx(kc.modelled_s)

    def test_native_measures_wall_clock_but_profiles_identically(self):
        sim = run_pipeline(5, backend="sim", session=ProfSession())
        nat = run_pipeline(5, backend="native", session=ProfSession())
        for name, kc in sim.kernels.items():
            kc_nat = nat.kernels[name]
            assert kc_nat.backend == "native"
            assert kc_nat.instructions == kc.instructions
            assert kc_nat.uncoalesced_transactions == (
                kc.uncoalesced_transactions
            )

    def test_totals(self):
        session = run_pipeline(5, session=ProfSession())
        assert session.total_modelled_s == pytest.approx(
            sum(k.modelled_s for k in session.kernels.values())
        )
        assert session.launch_count == 2


class TestInertness:
    def test_no_session_no_capture(self):
        # The whole inertness story: nothing attached, nothing recorded.
        assert run_pipeline(1) is None
        assert hook.active() is None

    def test_native_vectorized_skips_replay_when_inactive(self):
        boids = EmulatedBoids(
            32, 5, seed=5, device=Device(backend="native"),
            threads_per_block=16,
        )
        boids.step()
        launches = boids.device.backend.launches
        assert launches, "expected native launches"
        assert all(
            r.profile is None for r in launches if r.vectorized
        ), "replay profile must not be derived without a session"

    def test_native_replay_restores_memory_exactly(self):
        def states(session):
            boids = EmulatedBoids(
                32, 5, seed=5, device=Device(backend="native"),
                threads_per_block=16,
            )
            if session is not None:
                with session:
                    boids.step()
            else:
                boids.step()
            return boids.snapshot()

        plain = states(None)
        profiled = states(ProfSession())
        for key, arr in plain.items():
            np.testing.assert_array_equal(arr, profiled[key])
