"""Tests for the repro.serve serving subsystem."""
