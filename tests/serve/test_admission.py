"""Admission control: bounded queue + backpressure policies."""

import pytest

from repro import obs
from repro.cupp import CuppUsageError
from repro.serve.admission import AdmissionController
from repro.serve.request import RequestStatus, StepRequest


def req(sid="s", arrival=0.0, deadline=None) -> StepRequest:
    return StepRequest(session_id=sid, arrival_s=arrival, deadline_s=deadline)


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(CuppUsageError):
            AdmissionController(0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(CuppUsageError):
            AdmissionController(4, policy="drop-newest")


class TestRejectPolicy:
    def test_admits_until_full_then_rejects(self):
        ac = AdmissionController(2, policy="reject")
        assert ac.submit(req(), 0.0) is RequestStatus.QUEUED
        assert ac.submit(req(), 0.0) is RequestStatus.QUEUED
        overflow = req()
        assert ac.submit(overflow, 0.0) is RequestStatus.REJECTED
        assert overflow.status is RequestStatus.REJECTED
        assert ac.depth == 2

    def test_admit_stamps_time(self):
        ac = AdmissionController(2)
        r = req(arrival=1.0)
        ac.submit(r, 1.5)
        assert r.admit_s == 1.5


class TestShedOldestPolicy:
    def test_oldest_is_evicted_for_the_newcomer(self):
        ac = AdmissionController(2, policy="shed-oldest")
        oldest = req("old")
        ac.submit(oldest, 0.0)
        ac.submit(req("mid"), 0.1)
        fresh = req("new")
        assert ac.submit(fresh, 0.2) is RequestStatus.QUEUED
        assert oldest.status is RequestStatus.SHED
        assert [r.session_id for r in ac.queue] == ["mid", "new"]


class TestBlockPolicy:
    def test_overflow_parks_then_admits_fifo(self):
        ac = AdmissionController(1, policy="block")
        ac.submit(req("a"), 0.0)
        b, c = req("b"), req("c")
        assert ac.submit(b, 0.0) is RequestStatus.BLOCKED
        assert ac.submit(c, 0.0) is RequestStatus.BLOCKED
        assert ac.pending == 3
        ac.queue.popleft()  # a batch took "a"
        assert ac.on_slots_freed(1.0) == 1
        assert b.status is RequestStatus.QUEUED and b.admit_s == 1.0
        assert c.status is RequestStatus.BLOCKED

    def test_blocked_arrivals_keep_order_behind_earlier_blocked(self):
        # A new arrival must not jump the blocked line even if a slot is
        # technically open by the time it shows up.
        ac = AdmissionController(1, policy="block")
        ac.submit(req("a"), 0.0)
        b = req("b")
        ac.submit(b, 0.0)
        ac.queue.popleft()
        late = req("late")
        assert ac.submit(late, 0.5) is RequestStatus.BLOCKED
        ac.on_slots_freed(0.6)
        assert b.status is RequestStatus.QUEUED
        assert late.status is RequestStatus.BLOCKED

    def test_expired_blocked_requests_never_admit(self):
        ac = AdmissionController(1, policy="block")
        ac.submit(req("a"), 0.0)
        doomed = req("b", deadline=0.5)
        ac.submit(doomed, 0.0)
        ac.queue.popleft()
        assert ac.on_slots_freed(1.0) == 0
        assert doomed.status is RequestStatus.EXPIRED


class TestDeadlines:
    def test_already_past_deadline_refused_at_submit(self):
        # A request that arrives with its deadline already behind it
        # must never occupy a queue slot.
        ac = AdmissionController(4)
        stale = req("stale", deadline=1.0)
        status = ac.submit(stale, 2.0)
        assert status is RequestStatus.EXPIRED
        assert ac.depth == 0
        # The slot it did not take still serves a live request.
        ac.submit(req("fresh"), 2.0)
        assert ac.depth == 1

    def test_drop_expired_removes_only_late_requests(self):
        ac = AdmissionController(4)
        late = req("late", deadline=1.0)
        fine = req("fine", deadline=5.0)
        ac.submit(late, 0.0)
        ac.submit(fine, 0.0)
        dropped = ac.drop_expired(2.0)
        assert dropped == [late]
        assert late.status is RequestStatus.EXPIRED
        assert list(ac.queue) == [fine]


class TestMetrics:
    def test_depth_gauge_tracks_queue(self):
        ac = AdmissionController(4)
        ac.submit(req(), 0.0)
        ac.submit(req(), 0.0)
        snap = obs.get_metrics().snapshot()
        assert snap["gauges"]["repro.queue.depth{component=serve}"] == 2

    def test_outcome_counters(self):
        ac = AdmissionController(1, policy="reject")
        ac.submit(req(), 0.0)
        ac.submit(req(), 0.0)
        snap = obs.get_metrics().snapshot()["counters"]
        assert snap["repro.serve.requests{outcome=admitted}"] == 1
        assert snap["repro.serve.requests{outcome=rejected}"] == 1
