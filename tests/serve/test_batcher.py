"""Dynamic batcher: the window/size rule and eligibility constraints."""

from collections import deque

import pytest

from repro.cupp import CuppUsageError
from repro.serve.batcher import DynamicBatcher
from repro.serve.request import StepRequest


def queued(sid, admit_s=0.0) -> StepRequest:
    r = StepRequest(session_id=sid, arrival_s=admit_s)
    r.admit_s = admit_s
    return r


class TestValidation:
    def test_max_batch_positive(self):
        with pytest.raises(CuppUsageError):
            DynamicBatcher(max_batch=0)

    def test_window_non_negative(self):
        with pytest.raises(CuppUsageError):
            DynamicBatcher(window_s=-1e-3)

    def test_disabled_degenerates_to_per_request(self):
        b = DynamicBatcher(max_batch=32, window_s=5e-3, enabled=False)
        assert b.max_batch == 1 and b.window_s == 0.0


class TestReadyTime:
    def test_empty_queue_never_ready(self):
        b = DynamicBatcher()
        assert b.ready_time(deque(), set(), 0.0) is None

    def test_size_trigger_fires_immediately(self):
        b = DynamicBatcher(max_batch=2, window_s=1.0)
        q = deque([queued("a"), queued("b")])
        assert b.ready_time(q, set(), 0.5) == 0.5

    def test_window_trigger_waits_for_oldest(self):
        b = DynamicBatcher(max_batch=8, window_s=2e-3)
        q = deque([queued("a", admit_s=1.0)])
        assert b.ready_time(q, set(), 1.0) == pytest.approx(1.002)

    def test_busy_sessions_do_not_hold_the_window(self):
        b = DynamicBatcher(max_batch=8, window_s=2e-3)
        q = deque([queued("busy", 0.0), queued("free", 1.0)])
        assert b.ready_time(q, {"busy"}, 1.0) == pytest.approx(1.002)

    def test_all_busy_is_not_ready(self):
        b = DynamicBatcher()
        q = deque([queued("a"), queued("a")])
        assert b.ready_time(q, {"a"}, 5.0) is None


class TestTake:
    def test_fifo_up_to_max_batch(self):
        b = DynamicBatcher(max_batch=2)
        q = deque([queued("a"), queued("b"), queued("c")])
        batch = b.take(q, set(), 0.0)
        assert [r.session_id for r in batch.requests] == ["a", "b"]

    def test_one_request_per_session_per_batch(self):
        b = DynamicBatcher(max_batch=8)
        q = deque([queued("a", 0.0), queued("a", 0.1), queued("b", 0.2)])
        batch = b.take(q, set(), 1.0)
        assert [r.session_id for r in batch.requests] == ["a", "b"]

    def test_in_flight_sessions_are_skipped(self):
        b = DynamicBatcher(max_batch=8)
        q = deque([queued("a"), queued("b")])
        batch = b.take(q, {"a"}, 1.0)
        assert [r.session_id for r in batch.requests] == ["b"]

    def test_placeable_predicate_filters(self):
        b = DynamicBatcher(max_batch=8)
        q = deque([queued("a"), queued("b")])
        batch = b.take(q, set(), 1.0, placeable=lambda r: r.session_id != "a")
        assert [r.session_id for r in batch.requests] == ["b"]

    def test_batch_ids_are_monotone(self):
        b = DynamicBatcher(max_batch=1)
        q = deque([queued("a"), queued("b")])
        first = b.take(q, set(), 0.0)
        q.popleft()
        second = b.take(q, set(), 0.0)
        assert second.batch_id == first.batch_id + 1
