"""End-to-end chaos: scripted faults through the full serving pipeline.

Each scenario scripts the :class:`~repro.fault.FaultInjector` so exactly
one known fault fires at a known consult point, then asserts the
service's recovery machinery — retry with backoff, watchdog timeout,
device eviction and failover, checkpoint rollback, probe readmission —
leaves every request terminal and every session's physics equal to a
clean reference run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.fault import FaultConfig
from repro.serve.request import RequestStatus, TERMINAL_STATUSES
from repro.serve.service import ServeConfig, SimulationService
from repro.steer.params import DEFAULT_PARAMS
from repro.steer.simulation import Simulation


def chaos_service(script, **overrides) -> SimulationService:
    defaults = dict(
        agents_per_session=16,
        devices=1,
        physics=True,
        faults=FaultConfig(script=script),
    )
    defaults.update(overrides)
    return SimulationService(ServeConfig(**defaults))


def reference_positions(n: int, seed: int, steps: int) -> np.ndarray:
    ref = Simulation(n, DEFAULT_PARAMS, seed=seed)
    for _ in range(steps):
        ref.update()
    return ref.positions


class TestLaunchFail:
    def test_transient_failure_retries_to_done(self):
        service = chaos_service({"launch": ["launch-fail"]})
        service.create_session("a", n=16, seed=1)
        r = service.submit("a")
        service.drain()

        assert r.status is RequestStatus.DONE
        assert r.attempts == 1
        assert service.stats.retries == 1
        assert service.stats.completed == 1
        led = obs.get_ledger().snapshot()
        assert led["count_by_cause"]["fault-inject"] == 1
        assert led["count_by_cause"]["retry"] == 1
        # The step that finally ran is the step the client sees.
        session = service.store.get("a")
        np.testing.assert_allclose(
            session.sim.positions, reference_positions(16, 1, 1)
        )

    def test_retry_applies_exponential_backoff(self):
        service = chaos_service({"launch": ["launch-fail", "launch-fail"]})
        service.create_session("a", n=16, seed=1)
        r = service.submit("a")
        service.drain()

        assert r.status is RequestStatus.DONE
        assert r.attempts == 2
        # Two backoffs were paid: base and base*multiplier.
        retry = service.retry
        floor = retry.backoff_for(1) + retry.backoff_for(2)
        assert r.latency_s > floor

    def test_exhausted_attempts_fail_the_request(self):
        service = chaos_service({"launch": ["launch-fail"] * 3})
        service.create_session("a", n=16, seed=2)
        r = service.submit("a")
        service.drain()

        assert r.status is RequestStatus.FAILED
        assert r.status in TERMINAL_STATUSES
        assert r.attempts == service.retry.max_attempts
        assert service.stats.failed == 1
        assert service.stats.retries == 2
        assert service.stats.completed == 0
        # The flock never stepped: no launch ever got through.
        session = service.store.get("a")
        assert session.steps_done == 0
        np.testing.assert_allclose(
            session.sim.positions, reference_positions(16, 2, 0)
        )


class TestHangTimeoutFailover:
    """An injected hang wedges a device; the watchdog takes it from there.

    This is also the sub-batch-completes-after-timeout regression: the
    hung batch's (late) completion event must be reaped as a zombie
    without re-touching sessions that already failed over and re-ran.
    """

    def _run_hang(self):
        service = chaos_service({"launch": ["hang"]}, devices=2)
        service.create_session("a", n=16, seed=3)
        r = service.submit("a")
        service.drain()
        return service, r

    def test_watchdog_evicts_and_request_fails_over(self):
        service, r = self._run_hang()
        assert r.status is RequestStatus.DONE
        assert r.attempts == 1
        # The retry ran on the surviving device.
        assert r.device_index == 1
        assert service.stats.timeouts == 1
        assert service.stats.evictions == 1
        assert service.stats.failovers == 1
        led = obs.get_ledger().snapshot()
        assert led["count_by_cause"]["device-evict"] == 1
        assert led["count_by_cause"]["failover-restore"] == 1

    def test_session_rolls_back_then_replays_cleanly(self):
        service, _ = self._run_hang()
        session = service.store.get("a")
        assert session.restores_done == 1
        assert session.steps_done == 1
        assert session.resident_on == 1
        np.testing.assert_allclose(
            session.sim.positions, reference_positions(16, 3, 1)
        )

    def test_probe_readmits_the_drained_device(self):
        service, _ = self._run_hang()
        # drain() outlives the hang (~hang_latency_s), so by the end a
        # probe has found the timeline idle and readmitted the device.
        assert not service.scheduler.unhealthy
        assert obs.counter("fault.readmissions").value == 1

    def test_late_completion_is_reaped_as_zombie(self):
        service, _ = self._run_hang()
        # The hung sub-batch's completion event arrived long after its
        # timeout; it was reaped without a second engine.advance.
        assert not service._zombies
        assert service.stats.completed == 1
        assert service.store.get("a").steps_done == 1


class TestTransferCorrupt:
    def test_corrupt_fetch_rolls_back_and_retries(self):
        service = chaos_service({"transfer": ["transfer-corrupt"]})
        service.create_session("a", n=16, seed=5)
        r = service.submit("a")
        service.drain()

        assert r.status is RequestStatus.DONE
        assert r.attempts == 1
        assert obs.counter("fault.corruptions").value == 1
        session = service.store.get("a")
        # The poisoned step was discarded; only the clean one counts.
        assert session.restores_done == 1
        assert session.steps_done == 1
        np.testing.assert_allclose(
            session.sim.positions, reference_positions(16, 5, 1)
        )

    def test_rollback_is_attributed_as_failover_restore(self):
        service = chaos_service({"transfer": ["transfer-corrupt"]})
        service.create_session("a", n=16, seed=5)
        service.submit("a")
        service.drain()
        led = obs.get_ledger().snapshot()
        assert led["count_by_cause"]["failover-restore"] == 1
        assert (
            led["bytes_by_cause"]["failover-restore"]
            == service.store.get("a").state_bytes
        )


class TestSpuriousOom:
    def test_unabsorbed_oom_is_a_transient_launch_fault(self):
        # Without a pool there is no flush-and-retry: the injected OOM
        # surfaces from the raw driver path and the launch is retried.
        service = chaos_service({"alloc": ["spurious-oom"]}, pool=False)
        service.create_session("a", n=16, seed=7)
        r = service.submit("a")
        service.drain()

        assert r.status is RequestStatus.DONE
        assert r.attempts == 1
        assert service.stats.retries == 1
        session = service.store.get("a")
        assert session.resident_on == 0
        np.testing.assert_allclose(
            session.sim.positions, reference_positions(16, 7, 1)
        )

    def test_pool_flush_and_retry_absorbs_the_oom(self):
        # With the pool in the path the spurious OOM is swallowed by its
        # flush-and-retry: the request never notices.
        service = chaos_service({"alloc": ["spurious-oom"]}, pool=True)
        service.create_session("a", n=16, seed=7)
        r = service.submit("a")
        service.drain()

        assert r.status is RequestStatus.DONE
        assert r.attempts == 0
        assert service.stats.retries == 0
        pool = service.group.devices[0].pool
        assert pool.stats().oom_retries_ok == 1


class TestChaosDeterminism:
    def _run(self):
        cfg = ServeConfig(
            agents_per_session=32,
            devices=2,
            physics=False,
            faults=FaultConfig.chaos(seed=11, device_fault_rate=0.2),
        )
        service = SimulationService(cfg)
        for i in range(6):
            service.create_session(f"s{i}", n=32)
        requests = []
        for _ in range(5):
            for i in range(6):
                requests.append(service.submit(f"s{i}"))
            service.advance(service.now + 1e-3)
        service.drain()
        outcomes = [(r.status.name, r.attempts, r.finish_s) for r in requests]
        return outcomes, service.fault_stats, requests

    def test_same_seed_same_outcome_trajectory(self):
        one, stats_one, _ = self._run()
        obs.reset()
        two, stats_two, _ = self._run()
        assert stats_one["injected"] > 0
        assert one == two
        assert stats_one == stats_two

    def test_no_request_is_ever_stranded(self):
        _, _, requests = self._run()
        assert all(r.status in TERMINAL_STATUSES for r in requests)


class TestConnectedTrace:
    """Satellite of the flight recorder: one request that is launch-failed,
    retried, hung, evicted, and failed over must leave a single causally
    connected trace — link edges at every hop."""

    def _run(self):
        from repro.obs.flight import FlightRecorder

        service = chaos_service(
            {"launch": ["launch-fail", "hang", None]}, devices=2
        )
        service.attach_flight(FlightRecorder(head_sample_every=1))
        service.create_session("a", n=16, seed=3)
        r = service.submit("a")
        service.drain()
        assert r.status is RequestStatus.DONE
        return service, r

    def test_every_hop_carries_a_link_edge(self):
        service, r = self._run()
        record = service.flight.trace_for_request(r.request_id)
        assert record is not None
        assert {"fault", "failover"} <= record.flags

        attempts = [
            s for s in record.spans if s.name.startswith("attempt-")
        ]
        assert [s.name for s in attempts] == [
            "attempt-1", "attempt-2", "attempt-3",
        ]
        # Attempt 1 failed at launch; attempt 2 retried it, then hung
        # and timed out; attempt 3 failed over to the healthy device.
        kinds = [
            [link.kind for link in s.links] for s in attempts
        ]
        assert kinds[0] == ["fused-launch"]
        assert sorted(kinds[1]) == ["fused-launch", "retry-of"]
        assert sorted(kinds[2]) == ["failover-of", "fused-launch"]

        # Each recovery edge points at the span of the prior attempt,
        # within the same trace: the chain has no gaps.
        by_id = {s.span_id: s for s in record.spans}
        for span, kind in ((attempts[1], "retry-of"),
                           (attempts[2], "failover-of")):
            (edge,) = [l for l in span.links if l.kind == kind]
            assert edge.trace_id == record.trace_id
            assert by_id[edge.span_id].name.startswith("attempt-")

    def test_fused_spans_link_back_to_every_rider(self):
        service, r = self._run()
        record = service.flight.trace_for_request(r.request_id)
        for span in record.spans:
            if not span.name.startswith("attempt-"):
                continue
            (fused_link,) = [
                l for l in span.links if l.kind == "fused-launch"
            ]
            fused = service.flight.batch_span(fused_link.span_id)
            assert fused is not None
            # The coalesced back-edge names this request's trace.
            assert any(
                l.kind == "coalesced" and l.trace_id == record.trace_id
                for l in fused.links
            )

    def test_explain_sees_one_connected_waterfall(self):
        from repro.serve.explain import waterfall

        service, r = self._run()
        w = waterfall(service.flight, r.request_id)
        assert w["connected"]
        assert w["attempts"] == 3
        recovery = [h["kind"] for h in w["hops"] if h["kind"]]
        assert recovery == ["retry-of", "failover-of"]
        # The final attempt rode the surviving device.
        assert w["hops"][-1]["fused"]["device"] == r.device_index

    def test_device_timeline_recorded_the_wedge(self):
        service, _ = self._run()
        kinds_by_device: dict = {}
        for e in service.flight.device_events:
            kinds_by_device.setdefault(e.device, set()).add(e.kind)
        # Device 0 hung (wedged track); the failover ran elsewhere.
        assert "wedged" in kinds_by_device[0]
        assert "busy" in kinds_by_device[1]


class TestSloDegradation:
    def test_fault_alert_shrinks_window_then_restores(self):
        from repro.obs.monitor import SloMonitor, SloRule

        service = chaos_service({"launch": ["launch-fail"]})
        monitor = SloMonitor(
            [
                SloRule(
                    name="fault-count",
                    series="repro.fault.events",
                    stat="count",
                    threshold=0.0,
                    window_s=0.01,
                )
            ]
        )
        service.attach_monitor(monitor, degrade_policy="shed-oldest")
        normal = service.batcher.window_s
        service.create_session("a", n=16, seed=1)
        service.submit("a")
        service.drain()

        # The scripted fault fired the rule: degraded while it burns.
        assert monitor.active
        assert service.batcher.window_s == pytest.approx(normal * 0.25)
        assert service.admission.policy == "shed-oldest"

        # Slide the clock past the rule window; the next evaluation
        # clears the alert and restores the batcher's normal window.
        service.advance(service.now + 0.1)
        service.submit("a")
        service.drain()
        assert not monitor.active
        assert service.batcher.window_s == pytest.approx(normal)
        assert service.admission.policy == "reject"


class TestFaultFreeInertness:
    def test_no_faults_config_leaves_every_counter_zero(self):
        service = SimulationService(
            ServeConfig(agents_per_session=16, devices=2, physics=False)
        )
        assert service.injector is None
        assert service.fault_stats is None
        service.create_session("a")
        for _ in range(4):
            service.submit("a")
        service.drain()
        s = service.stats
        assert (s.retries, s.failed, s.timeouts, s.evictions, s.failovers) == (
            0,
            0,
            0,
            0,
            0,
        )
        assert not service._retry_parked and not service._zombies
