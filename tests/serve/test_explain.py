"""repro.serve.explain + service flight integration: the waterfall a
request's retained trace reconstructs, end to end."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.fault import FaultConfig
from repro.obs.flight import FlightRecorder
from repro.serve import explain
from repro.serve.request import RequestStatus
from repro.serve.service import ServeConfig, SimulationService


def flight_service(script=None, flight=None, **overrides):
    defaults = dict(
        agents_per_session=16,
        devices=2,
        physics=False,
    )
    if script is not None:
        defaults["faults"] = FaultConfig(script=script)
    defaults.update(overrides)
    service = SimulationService(ServeConfig(**defaults))
    service.attach_flight(flight or FlightRecorder(head_sample_every=1))
    return service


class TestCleanWaterfall:
    def test_done_request_walks_admit_queue_attempt(self):
        service = flight_service()
        service.create_session("a")
        r = service.submit("a")
        service.drain()

        w = explain.waterfall(service.flight, r.request_id)
        assert w["request_id"] == r.request_id
        assert [h["name"] for h in w["hops"]] == [
            "request", "admit", "queue", "attempt-1",
        ]
        assert w["connected"]
        assert w["attempts"] == 1 and w["fused_links"] == 1
        last = w["hops"][-1]
        assert last["outcome"] == "done"
        assert last["fused"]["size"] == 1

    def test_coalesced_peers_point_at_batchmates(self):
        service = flight_service()
        for i in range(3):
            service.create_session(f"s{i}")
        requests = [service.submit(f"s{i}") for i in range(3)]
        service.drain()

        # All three rode one fused launch (same arrival instant, one
        # device free at window close) or split across two devices;
        # every rider's peers must be exactly its batchmates.
        by_batch: dict = {}
        for r in requests:
            by_batch.setdefault((r.batch_id, r.device_index), []).append(r)
        for (batch, _), riders in by_batch.items():
            if len(riders) < 2:
                continue
            traces = {
                service.flight.trace_for_request(r.request_id).trace_id
                for r in riders
            }
            for r in riders:
                w = explain.waterfall(service.flight, r.request_id)
                own = service.flight.trace_for_request(
                    r.request_id
                ).trace_id
                assert set(w["hops"][-1]["peers"]) == traces - {own}

    def test_trace_id_lookup_matches_request_lookup(self):
        service = flight_service()
        service.create_session("a")
        r = service.submit("a")
        service.drain()
        trace_id = service.flight.trace_for_request(r.request_id).trace_id
        assert explain.waterfall(service.flight, trace_id) == \
            explain.waterfall(service.flight, r.request_id)

    def test_unknown_id_raises_with_sampling_hint(self):
        service = flight_service()
        service.create_session("a")
        service.submit("a")
        service.drain()
        with pytest.raises(KeyError, match="tail sampling"):
            explain.waterfall(service.flight, 999)


class TestFaultedWaterfall:
    def test_failover_hop_lands_in_the_waterfall(self):
        service = flight_service({"launch": ["hang"]})
        service.create_session("a", seed=3)
        r = service.submit("a")
        service.drain()
        assert r.status is RequestStatus.DONE

        w = explain.waterfall(service.flight, r.request_id)
        kinds = [h["kind"] for h in w["hops"] if h["kind"]]
        assert kinds == ["failover-of"]
        assert w["connected"]
        first, second = [
            h for h in w["hops"] if h["name"].startswith("attempt")
        ]
        assert first["outcome"] == "batch-timeout"
        assert second["outcome"] == "done"
        assert "failover" in w["flags"] and "fault" in w["flags"]

    def test_failed_request_waterfall_ends_failed(self):
        service = flight_service({"launch": ["launch-fail"] * 3})
        service.create_session("a", seed=2)
        r = service.submit("a")
        service.drain()
        assert r.status is RequestStatus.FAILED

        w = explain.waterfall(service.flight, r.request_id)
        assert "failed" in w["flags"]
        assert w["attempts"] == 3
        kinds = [h["kind"] for h in w["hops"] if h["kind"]]
        assert kinds == ["retry-of", "retry-of"]
        assert w["hops"][0]["outcome"] == "failed"
        assert w["connected"]

    def test_expired_request_records_deadline_miss(self):
        service = flight_service()
        service.create_session("a")
        r = service.submit("a", deadline_s=-1.0)
        assert r.status is RequestStatus.EXPIRED
        record = service.flight.trace_for_request(r.request_id)
        assert "deadline-miss" in record.flags
        assert record.spans[0].attrs["where"] == "submit"


class TestExplainCli:
    def _chaos_file(self, tmp_path):
        service = flight_service({"launch": ["hang"]})
        service.create_session("a", seed=3)
        r = service.submit("a")
        service.drain()
        path = tmp_path / "flight.json"
        service.flight.write(str(path))
        return str(path), r.request_id

    def test_cli_renders_waterfall_and_json(self, tmp_path, capsys):
        path, request_id = self._chaos_file(tmp_path)
        out_json = tmp_path / "waterfall.json"
        code = explain.main(
            [path, str(request_id), "--json", str(out_json), "--gantt"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "failover-of" in out
        assert "device timeline" in out
        doc = json.loads(out_json.read_text())
        assert doc["connected"]
        assert any(h["kind"] == "failover-of" for h in doc["hops"])

    def test_cli_unknown_id_exits_nonzero(self, tmp_path, capsys):
        path, _ = self._chaos_file(tmp_path)
        assert explain.main([path, "424242"]) == 1
        assert "tail sampling" in capsys.readouterr().err


class TestTracingIsInert:
    def test_flight_off_leaves_no_context_and_same_timings(self):
        def run(attach: bool):
            obs.reset()
            service = SimulationService(
                ServeConfig(agents_per_session=16, devices=2, physics=False)
            )
            if attach:
                service.attach_flight(FlightRecorder(head_sample_every=1))
            service.create_session("a")
            requests = [service.submit("a") for _ in range(4)]
            service.drain()
            return [(r.status.name, r.finish_s, r.latency_s) for r in requests]

        off = run(False)
        on = run(True)
        assert off == on

    def test_flight_off_requests_carry_no_ctx(self):
        service = SimulationService(
            ServeConfig(agents_per_session=16, physics=False)
        )
        service.create_session("a")
        r = service.submit("a")
        service.drain()
        assert r.ctx is None


class TestExporterGuard:
    def test_minus_one_request_id_is_rejected(self):
        from repro.obs.export import chrome_trace
        from repro.obs.tracer import TraceEvent

        bad = TraceEvent(
            name="serve.deadline-miss", kind="instant", ts=0.0, dur=0.0,
            tid=1, depth=0, parent=None, args={"request": -1},
        )
        with pytest.raises(ValueError, match="request id sentinel"):
            chrome_trace([bad])

    def test_unassigned_request_emits_no_request_arg(self):
        from repro.obs.export import chrome_trace
        from repro.serve.admission import AdmissionController
        from repro.serve.request import StepRequest

        recorder = obs.enable_tracing()
        admission = AdmissionController(capacity=4)
        # A request offered straight to admission (no service assigning
        # an id) with an already-missed deadline: the instant must not
        # leak request=-1, and the exporter must accept the trace.
        admission.submit(
            StepRequest(session_id="a", arrival_s=0.0, deadline_s=-1.0),
            now=0.0,
        )
        events = recorder.events()
        miss = [e for e in events if e.name == "serve.deadline-miss"]
        assert miss and "request" not in miss[0].args
        assert miss[0].args["where"] == "submit"
        chrome_trace(events)  # must not raise


class TestAnalyzeWhereSplit:
    def test_deadline_miss_instants_split_by_where(self):
        from repro.obs.analyze import analyze

        recorder = obs.enable_tracing()
        service = SimulationService(
            ServeConfig(agents_per_session=16, physics=False)
        )
        service.create_session("a")
        # Submit-time refusal: deadline already passed at arrival.
        service.submit("a", deadline_s=-1.0)
        # Queue expiry: admitted fine, expires before any batch forms.
        service.submit("a", deadline_s=service.now + 1e-9)
        service.advance(service.now + 1.0)
        service.drain()
        report = analyze(recorder.events())
        assert report.instants["serve.deadline-miss[where=submit]"] == 1
        assert report.instants["serve.deadline-miss[where=dequeue]"] == 1
