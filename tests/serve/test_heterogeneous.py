"""Heterogeneous serving: mixed sim/native device groups end to end."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.serve.loadgen import main as loadgen_main, run_load
from repro.serve.scheduler import DeviceScheduler, make_group
from repro.serve.service import ServeConfig, SimulationService


class _StubEngine:
    """Fixed-cost stand-in for StepEngine.batch_kernel_seconds."""

    def __init__(self, seconds: float = 1e-3) -> None:
        self.seconds = seconds

    def batch_kernel_seconds(self, sessions) -> float:
        return self.seconds


class TestMixedGroups:
    def test_make_group_mixed_alternates_kinds(self):
        group = make_group(4, backend="mixed")
        kinds = [d.backend_kind for d in group.devices]
        assert kinds == ["sim", "native", "sim", "native"]

    def test_make_group_explicit_list(self):
        group = make_group(2, backend=["native", "sim"])
        assert [d.backend_kind for d in group.devices] == ["native", "sim"]

    def test_homogeneous_scheduler_is_not_heterogeneous(self):
        sched = DeviceScheduler(make_group(2, backend="sim"))
        assert not sched.heterogeneous
        assert sched.backend_kinds == ["sim", "sim"]

    def test_mixed_scheduler_flags_heterogeneous(self):
        sched = DeviceScheduler(make_group(2, backend="mixed"))
        assert sched.heterogeneous
        assert sched.backend_kinds == ["sim", "native"]


class TestCostModel:
    def test_sim_prediction_is_the_perf_model(self):
        sched = DeviceScheduler(make_group(2, backend="mixed"))
        engine = _StubEngine(2.5e-3)
        assert sched.predict_kernel_s(0, [], engine) == engine.batch_kernel_seconds([])

    def test_native_prediction_starts_at_the_perf_model(self):
        sched = DeviceScheduler(make_group(2, backend="mixed"))
        engine = _StubEngine(2.5e-3)
        # Cold EWMA: ratio seeded at 1.0, so prediction == model.
        assert sched.predict_kernel_s(1, [], engine) == pytest.approx(2.5e-3)

    def test_native_prediction_learns_from_measurements(self):
        sched = DeviceScheduler(make_group(2, backend="mixed"))
        engine = _StubEngine(1e-3)
        sched.observe_native_cost(1, modelled_s=1e-3, measured_s=5e-3)
        assert sched.predict_kernel_s(1, [], engine) == pytest.approx(5e-3)
        # Sim devices never learn a ratio — their model is their clock.
        sched.observe_native_cost(0, modelled_s=1e-3, measured_s=5e-3)
        assert sched.predict_kernel_s(0, [], engine) == pytest.approx(1e-3)

    def test_cold_split_weights_by_learned_speed(self):
        sched = DeviceScheduler(make_group(2, backend="mixed"))
        engine = _StubEngine()
        # Native device measured 3x slower than modelled: weights 1 : 1/3
        # over 8 requests round to 6 on the sim device, 2 on the native.
        sched.observe_native_cost(1, modelled_s=1e-3, measured_s=3e-3)
        assert sched._cold_bounds([0, 1], 8, engine) == [(0, 6), (6, 8)]

    def test_homogeneous_split_stays_even(self):
        sched = DeviceScheduler(make_group(2, backend="sim"))
        assert sched._cold_bounds([0, 1], 9, _StubEngine()) == [(0, 5), (5, 9)]


class TestMixedServing:
    def test_mixed_run_routes_work_to_both_backend_kinds(self):
        service = SimulationService(
            ServeConfig(
                agents_per_session=16, devices=2, backend="mixed",
                physics=False,
            )
        )
        for i in range(8):
            service.create_session(f"s{i}", seed=i)
        for _ in range(3):
            for i in range(8):
                service.submit(f"s{i}")
            service.drain()
        placed = service.scheduler.placed_requests
        kinds = service.scheduler.backend_kinds
        assert kinds == ["sim", "native"]
        assert all(p > 0 for p in placed), placed
        assert service.stats.completed == 24

    def test_mixed_physics_matches_sim_only(self):
        def run(backend):
            service = SimulationService(
                ServeConfig(
                    agents_per_session=16, devices=2, backend=backend,
                    physics=True,
                )
            )
            service.create_session("a", n=16, seed=7)
            service.create_session("b", n=16, seed=8)
            for _ in range(2):
                service.submit("a")
                service.submit("b")
            service.drain()
            return service.store.get("a").sim.positions.copy()

        np.testing.assert_array_equal(run("sim"), run("mixed"))

    def test_bogus_backend_rejected_at_service_construction(self):
        with pytest.raises(ConfigurationError, match="sim, native"):
            SimulationService(ServeConfig(backend="bogus"))


class TestLoadgenBackend:
    def test_report_carries_backend(self):
        config = ServeConfig(
            agents_per_session=8, devices=2, backend="mixed", physics=False
        )
        report = run_load(
            clients=4, duration_s=0.02, rate_rps=400.0, config=config
        )
        assert report.backend == "mixed"
        assert report.to_dict()["backend"] == "mixed"
        assert any("backend mixed" in line for line in report.lines())

    def test_cli_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit) as exc:
            loadgen_main(["--backend", "bogus", "--duration", "0.01"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "sim" in err and "native" in err
