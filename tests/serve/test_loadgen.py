"""Load generator: determinism, SLO report shape, batching contrast."""

import json

from repro.fault import FaultConfig
from repro.serve.loadgen import LoadReport, main, run_load
from repro.serve.service import ServeConfig


def small_config(batching=True, **overrides) -> ServeConfig:
    defaults = dict(
        agents_per_session=32,
        devices=1,
        physics=False,
        batching=batching,
        queue_capacity=64,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def small_run(batching=True, **kwargs) -> LoadReport:
    params = dict(
        clients=4, duration_s=0.05, rate_rps=4000.0, seed=11,
        config=small_config(batching=batching),
    )
    params.update(kwargs)
    return run_load(**params)


class TestReport:
    def test_percentiles_are_ordered(self):
        report = small_run()
        assert 0 < report.p50_ms <= report.p95_ms <= report.p99_ms

    def test_counts_balance(self):
        report = small_run()
        terminal = (
            report.completed + report.rejected + report.shed + report.expired
        )
        assert terminal == report.offered
        assert report.throughput_rps > 0

    def test_deterministic_for_a_seed(self):
        a, b = small_run(), small_run()
        assert a.to_dict() == b.to_dict()
        assert a.latencies_ms == b.latencies_ms

    def test_different_seeds_differ(self):
        assert small_run().to_dict() != small_run(seed=99).to_dict()

    def test_to_dict_is_json_serializable(self):
        payload = json.dumps(small_run().to_dict())
        decoded = json.loads(payload)
        assert decoded["completed"] > 0
        assert "throughput_rps" in decoded


class TestBatchingContrast:
    def test_batching_amortizes_launches(self):
        on, off = small_run(True), small_run(False)
        assert on.completed > 0 and off.completed > 0
        assert on.launches < off.launches
        assert on.launches_per_request < off.launches_per_request
        assert on.mean_batch_size > off.mean_batch_size == 1.0

    def test_saturation_favors_batching_throughput(self):
        # Offer more than the per-request path can dispatch; the batched
        # service completes more of the same arrival stream.
        kwargs = dict(clients=16, duration_s=0.1, rate_rps=16000.0, seed=3)
        on = run_load(config=small_config(True), **kwargs)
        off = run_load(config=small_config(False), **kwargs)
        assert on.completed > off.completed
        assert on.throughput_rps > off.throughput_rps
        assert off.rejected > 0  # the unbatched queue actually overflowed


class TestChaosMode:
    def _chaos_run(self, seed=7, fault_rate=0.2) -> LoadReport:
        cfg = small_config(
            devices=2,
            faults=FaultConfig.chaos(seed=seed, device_fault_rate=fault_rate),
        )
        return run_load(
            clients=8, duration_s=0.05, rate_rps=8000.0, seed=seed, config=cfg
        )

    def test_chaos_run_strands_nothing(self):
        report = self._chaos_run()
        assert report.faults is not None
        assert report.faults["injected"] > 0
        assert report.stranded == 0
        assert report.completed + report.failed > 0

    def test_chaos_report_is_deterministic(self):
        assert self._chaos_run().to_dict() == self._chaos_run().to_dict()

    def test_recovery_counters_reach_the_report(self):
        report = self._chaos_run()
        assert report.retries > 0
        d = report.to_dict()
        for key in ("failed", "stranded", "retries", "timeouts",
                    "evictions", "failovers", "faults"):
            assert key in d
        assert "chaos" in "\n".join(report.lines())

    def test_fault_free_report_omits_the_chaos_block(self):
        report = small_run()
        assert report.faults is None
        assert "chaos" not in "\n".join(report.lines())


class TestCli:
    def test_main_prints_report_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            [
                "--clients", "4", "--duration", "0.02", "--rate", "2000",
                "--agents", "32", "--devices", "1", "--seed", "5",
                "--json", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "p50" in text and "throughput" in text
        data = json.loads(out.read_text())
        assert data["completed"] > 0

    def test_compare_mode_reports_both(self, capsys):
        code = main(
            [
                "--clients", "4", "--duration", "0.02", "--rate", "2000",
                "--agents", "32", "--devices", "1", "--compare",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "batching on" in text and "batching OFF" in text
        assert "batching vs no-batching" in text

    def test_trace_output_is_valid_json(self, tmp_path, capsys):
        code = main(
            [
                "--clients", "2", "--duration", "0.01", "--rate", "1000",
                "--agents", "32", "--devices", "1",
                "--trace", str(tmp_path),
            ]
        )
        assert code == 0
        trace = json.loads((tmp_path / "serve-loadgen.trace.json").read_text())
        assert trace["traceEvents"]
        metrics = json.loads(
            (tmp_path / "serve-loadgen.metrics.json").read_text()
        )
        counters = metrics["metrics"]["counters"]
        assert counters["repro.serve.launches"] > 0
        assert metrics["transfer_ledger"]["bytes_by_cause"]["batch-concat"] > 0

    def test_cli_chaos_flag_runs_clean(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        code = main(
            [
                "--clients", "4", "--duration", "0.02", "--rate", "4000",
                "--agents", "32", "--devices", "2", "--seed", "7",
                "--chaos", "--chaos-rate", "0.2", "--json", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "chaos" in text
        data = json.loads(out.read_text())
        assert data["stranded"] == 0
        assert data["faults"]["injected"] > 0
