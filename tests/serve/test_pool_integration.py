"""Serve ↔ memory-pool integration.

The serving layer's allocation churn (per-batch result buffers, cold
staging buffers, session state blocks) must be absorbed by the caching
allocator: after the bins warm up, the steady state performs ZERO raw
driver allocations — and pooling must not perturb virtual-time results.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.serve.scheduler import make_group
from repro.serve.service import ServeConfig, SimulationService

CLIENTS = 8
WARMUP_S = 0.08
STEADY_S = 0.12
RATE_RPS = 6000.0


def _drive(pool: bool) -> dict:
    """Run a deterministic Poisson loadgen; split raw-alloc counts at
    the warmup boundary."""
    cfg = ServeConfig(physics=False, pool=pool)
    service = SimulationService(cfg)
    for i in range(CLIENTS):
        service.create_session(f"client-{i}", seed=i)
    rng = np.random.default_rng(7)
    total = WARMUP_S + STEADY_S
    gaps = rng.exponential(1.0 / RATE_RPS, size=int(RATE_RPS * total * 2))
    arrivals = np.cumsum(gaps)
    arrivals = arrivals[arrivals < total]
    owners = rng.integers(0, CLIENTS, size=arrivals.size)
    raw = obs.counter("cuda.malloc.count")
    start = raw.value
    boundary = None
    for t, owner in zip(arrivals, owners):
        if boundary is None and t >= WARMUP_S:
            service.advance(WARMUP_S)
            boundary = raw.value
        service.advance(float(t))
        service.submit(f"client-{owner}")
    assert boundary is not None, "loadgen never reached the steady window"
    service.drain()
    hits = sum(
        obs.counter("mem.pool.hits", device=i).value
        for i in range(cfg.devices)
    )
    misses = sum(
        obs.counter("mem.pool.misses", device=i).value
        for i in range(cfg.devices)
    )
    return {
        "warmup_raw": int(boundary - start),
        "steady_raw": int(raw.value - boundary),
        "hit_rate": hits / (hits + misses) if (hits + misses) else 0.0,
        "completed": service.stats.completed,
        "batches": service.stats.batches,
        "launches": service.stats.launches,
        "batch_sizes": list(service.stats.batch_sizes),
    }


def test_steady_state_makes_zero_raw_driver_allocations():
    pooled = _drive(pool=True)
    assert pooled["completed"] > 0
    assert pooled["warmup_raw"] > 0  # bins had to warm up somehow
    assert pooled["steady_raw"] == 0
    assert pooled["hit_rate"] >= 0.8


def test_pool_does_not_change_serve_results():
    pooled = _drive(pool=True)
    obs.reset()
    raw = _drive(pool=False)
    # Virtual-time determinism: identical scheduling outcomes.
    assert pooled["completed"] == raw["completed"]
    assert pooled["batches"] == raw["batches"]
    assert pooled["launches"] == raw["launches"]
    assert pooled["batch_sizes"] == raw["batch_sizes"]
    # And the raw run really did hammer the driver in the steady state.
    assert raw["steady_raw"] > 0
    assert raw["hit_rate"] == 0.0


def test_pool_is_on_by_default_and_opt_out_works():
    assert ServeConfig().pool is True
    service = SimulationService(ServeConfig(physics=False))
    assert all(d.pool is not None for d in service.group.devices)
    service_raw = SimulationService(ServeConfig(physics=False, pool=False))
    assert all(d.pool is None for d in service_raw.group.devices)


def test_make_group_pool_flag():
    group = make_group(devices=2, pool=True)
    assert all(d.pool is not None for d in group.devices)
    group_raw = make_group(devices=2, pool=False)
    assert all(d.pool is None for d in group_raw.devices)
