"""SimulationService integration: the full admission->batch->device path."""

import numpy as np
import pytest

from repro import obs
from repro.serve.request import RequestStatus
from repro.serve.service import ServeConfig, SimulationService
from repro.serve.sessions import STATE_FLOATS_PER_AGENT
from repro.steer.params import DEFAULT_PARAMS
from repro.steer.simulation import Simulation


def make_service(**overrides) -> SimulationService:
    defaults = dict(agents_per_session=16, devices=1, physics=False)
    defaults.update(overrides)
    return SimulationService(ServeConfig(**defaults))


class TestPhysics:
    def test_served_steps_match_standalone_simulation(self):
        service = make_service(physics=True)
        service.create_session("a", n=16, seed=7)
        for _ in range(3):
            service.submit("a")
        service.drain()

        reference = Simulation(16, DEFAULT_PARAMS, seed=7)
        for _ in range(3):
            reference.update()
        served = service.store.get("a").sim
        np.testing.assert_allclose(served.positions, reference.positions)
        np.testing.assert_allclose(served.speeds, reference.speeds)

    def test_want_draw_returns_post_step_matrices(self):
        service = make_service(physics=True)
        service.create_session("a", n=8, seed=3)
        service.create_session("b", n=8, seed=4)
        ra = service.submit("a", want_draw=True)
        rb = service.submit("b", want_draw=True)
        service.drain()

        ref = Simulation(8, DEFAULT_PARAMS, seed=3)
        ref.update()
        assert ra.result.shape == (8, 4, 4)
        np.testing.assert_allclose(
            ra.result, ref.draw_stage().astype(np.float32), rtol=1e-6
        )
        assert rb.result.shape == (8, 4, 4)


class TestLifecycle:
    def test_request_journey_timestamps(self):
        service = make_service()
        service.create_session("a")
        r = service.submit("a")
        service.drain()
        assert r.status is RequestStatus.DONE
        assert r.admit_s == 0.0
        assert r.launch_s >= r.admit_s
        assert r.finish_s > r.launch_s
        assert r.latency_s > 0 and r.queue_wait_s >= 0
        assert r.device_index == 0 and r.batch_id == 0

    def test_per_session_requests_serialize(self):
        service = make_service()
        service.create_session("a")
        r1 = service.submit("a")
        r2 = service.submit("a")
        service.drain()
        assert r1.batch_id != r2.batch_id
        assert r2.launch_s >= r1.finish_s

    def test_unknown_session_rejected(self):
        from repro.cupp import CuppUsageError

        with pytest.raises(CuppUsageError):
            make_service().submit("ghost")

    def test_deterministic_replay(self):
        def run():
            service = make_service(agents_per_session=32)
            for i in range(4):
                service.create_session(f"s{i}", seed=i)
            reqs = []
            for k in range(12):
                service.advance(k * 1e-4)
                reqs.append(service.submit(f"s{k % 4}"))
            service.drain()
            return [(r.launch_s, r.finish_s, r.batch_id) for r in reqs]

        assert run() == run()


class TestBatchingEconomics:
    def test_one_batch_two_sessions_two_launches(self):
        service = make_service(max_batch=8)
        service.create_session("a")
        service.create_session("b")
        ra = service.submit("a")
        rb = service.submit("b")
        service.drain()
        assert ra.batch_id == rb.batch_id
        assert service.stats.batches == 1
        assert service.stats.launches == 2

    def test_unbatched_pays_launches_per_request(self):
        service = make_service(batching=False)
        service.create_session("a")
        service.create_session("b")
        service.submit("a")
        service.submit("b")
        service.drain()
        assert service.stats.batches == 2
        assert service.stats.launches == 4

    def test_batched_is_cheaper_in_launches_and_bytes(self):
        def totals(batching):
            obs.reset()
            service = make_service(max_batch=8, batching=batching)
            for i in range(4):
                service.create_session(f"s{i}")
                service.submit(f"s{i}")
            service.drain()
            led = obs.get_ledger().snapshot()
            return service.stats.launches, led["count_by_cause"]["batch-split"]

        batched_launches, batched_fetches = totals(True)
        unbatched_launches, unbatched_fetches = totals(False)
        assert batched_launches < unbatched_launches
        assert batched_fetches < unbatched_fetches


class TestLazyResidency:
    def test_state_uploaded_once_then_reused(self):
        service = make_service()
        session = service.create_session("a")
        service.submit("a")
        service.drain()
        uploaded = obs.get_ledger().snapshot()["bytes_by_cause"]["batch-concat"]
        assert uploaded == session.state_bytes
        assert session.resident_on == 0

        for _ in range(3):
            service.submit("a")
        service.drain()
        again = obs.get_ledger().snapshot()["bytes_by_cause"]["batch-concat"]
        assert again == uploaded  # lazy hits: not one byte re-uploaded

    def test_cold_sessions_fuse_into_one_upload(self):
        service = make_service(max_batch=8)
        sessions = [service.create_session(f"s{i}") for i in range(3)]
        for s in sessions:
            service.submit(s.session_id)
        service.drain()
        led = obs.get_ledger().snapshot()
        assert led["count_by_cause"]["batch-concat"] == 1
        assert led["bytes_by_cause"]["batch-concat"] == sum(
            s.state_bytes for s in sessions
        )


class TestMultiDevice:
    def test_cold_batch_spreads_over_free_devices(self):
        service = make_service(devices=2, max_batch=8)
        reqs = []
        for i in range(4):
            service.create_session(f"s{i}")
            reqs.append(service.submit(f"s{i}"))
        service.drain()
        assert {r.device_index for r in reqs} == {0, 1}

    def test_warm_sessions_stay_on_their_device(self):
        service = make_service(devices=2, max_batch=8)
        for i in range(4):
            service.create_session(f"s{i}")
            service.submit(f"s{i}")
        service.drain()
        homes = {s.session_id: s.resident_on for s in service.store}
        for i in range(4):
            service.submit(f"s{i}")
        service.drain()
        assert homes == {s.session_id: s.resident_on for s in service.store}


class TestBackpressure:
    def test_reject_overflow_end_to_end(self):
        service = make_service(queue_capacity=1, policy="reject")
        for i in range(3):
            service.create_session(f"s{i}")
        outcomes = [service.submit(f"s{i}").status for i in range(3)]
        service.drain()
        assert outcomes.count(RequestStatus.REJECTED) == 2
        assert service.stats.completed == 1

    def test_block_policy_eventually_serves_everyone(self):
        service = make_service(queue_capacity=1, policy="block")
        for i in range(3):
            service.create_session(f"s{i}")
        reqs = [service.submit(f"s{i}") for i in range(3)]
        service.drain()
        assert all(r.status is RequestStatus.DONE for r in reqs)
        assert service.stats.completed == 3

    def test_deadline_expires_queued_request(self):
        service = make_service(window_s=0.1, default_deadline_s=0.01)
        service.create_session("a")
        r = service.submit("a")
        service.drain()
        assert r.status is RequestStatus.EXPIRED
        assert r.finish_s is None


class TestSessionState:
    def test_synthetic_state_vector_is_stable(self):
        service = make_service()
        session = service.create_session("a")
        expected = 16 * STATE_FLOATS_PER_AGENT
        assert len(session.state) == expected
        service.submit("a")
        service.drain()
        assert len(session.state) == expected
