"""Session + SessionStore behaviour."""

import numpy as np
import pytest

from repro.cupp import CuppUsageError
from repro.serve.sessions import STATE_FLOATS_PER_AGENT, Session, SessionStore


class TestSession:
    def test_state_vector_layout(self):
        s = Session("a", 16, seed=1)
        assert len(s.state) == 16 * STATE_FLOATS_PER_AGENT
        assert s.state_bytes == 16 * STATE_FLOATS_PER_AGENT * 4

    def test_needs_positive_population(self):
        with pytest.raises(CuppUsageError):
            Session("a", 0)

    def test_physics_step_moves_the_flock(self):
        s = Session("a", 16, seed=1)
        before = s.sim.positions.copy()
        s.step()
        assert s.steps_done == 1
        assert not np.allclose(before, s.sim.positions)

    def test_synthetic_step_only_counts(self):
        s = Session("a", 16, seed=1, physics=False)
        before = s.sim.positions.copy()
        s.step()
        s.step()
        assert s.steps_done == 2
        np.testing.assert_array_equal(before, s.sim.positions)

    def test_refresh_tracks_physics_state(self):
        s = Session("a", 8, seed=1)
        stale = s.state.to_numpy().copy()
        s.step()
        s.refresh_state_vector()
        assert not np.allclose(stale, s.state.to_numpy())

    def test_synthetic_refresh_is_a_no_op(self):
        s = Session("a", 8, seed=1, physics=False)
        vec = s.state
        s.step()
        s.refresh_state_vector()
        assert s.state is vec

    def test_draw_matrices_shape_both_modes(self):
        for physics in (True, False):
            s = Session("a", 8, seed=1, physics=physics)
            mats = s.draw_matrices()
            assert mats.shape == (8, 4, 4)


class TestCheckpoint:
    def test_constructed_session_holds_one_checkpoint(self):
        s = Session("a", 8, seed=1)
        assert s.checkpoints_taken == 1
        assert s.restores_done == 0

    def test_restore_rolls_physics_back_to_snapshot(self):
        s = Session("a", 8, seed=1)
        s.step()
        s.checkpoint()
        good = (
            s.sim.positions.copy(),
            s.sim.forwards.copy(),
            s.sim.speeds.copy(),
        )
        s.step()
        s.step()
        assert s.steps_done == 3
        s.restore_checkpoint()
        assert s.steps_done == 1
        assert s.restores_done == 1
        np.testing.assert_array_equal(s.sim.positions, good[0])
        np.testing.assert_array_equal(s.sim.forwards, good[1])
        np.testing.assert_array_equal(s.sim.speeds, good[2])

    def test_restore_refreshes_the_state_vector(self):
        s = Session("a", 8, seed=1)
        s.checkpoint()
        before = s.state.to_numpy().copy()
        s.step()
        s.restore_checkpoint()
        np.testing.assert_array_equal(s.state.to_numpy(), before)

    def test_synthetic_checkpoint_is_just_the_counter(self):
        s = Session("a", 8, seed=1, physics=False)
        s.step()
        s.checkpoint()
        s.step()
        s.restore_checkpoint()
        assert s.steps_done == 1
        assert s.checkpoints_taken == 2


class TestSessionStore:
    def test_create_get_remove(self):
        store = SessionStore()
        store.create("a", 8, seed=1)
        assert "a" in store and len(store) == 1
        assert store.get("a").n == 8
        store.remove("a")
        assert "a" not in store

    def test_duplicate_ids_rejected(self):
        store = SessionStore()
        store.create("a", 8)
        with pytest.raises(CuppUsageError):
            store.create("a", 8)

    def test_unknown_id_rejected(self):
        with pytest.raises(CuppUsageError):
            SessionStore().get("nope")

    def test_iterates_sessions(self):
        store = SessionStore()
        store.create("a", 4)
        store.create("b", 4)
        assert {s.session_id for s in store} == {"a", "b"}
