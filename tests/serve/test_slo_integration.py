"""Live SLO monitoring wired through the serving stack (deterministic)."""

from repro import obs
from repro.serve.loadgen import run_load, slo_monitor
from repro.serve.service import ServeConfig


def _config(**overrides) -> ServeConfig:
    defaults = dict(
        agents_per_session=32,
        devices=1,
        physics=False,
        batching=True,
        queue_capacity=64,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _run(rate_rps, monitor=None, **kwargs):
    params = dict(
        clients=4,
        duration_s=0.05,
        rate_rps=rate_rps,
        seed=11,
        config=_config(),
        monitor=monitor,
    )
    params.update(kwargs)
    return run_load(**params)


def _monitor():
    return slo_monitor(p99_ms=2.6, queue_depth=30, window_s=0.02)


class TestSloFiring:
    """The acceptance scenario: fires above capacity, silent below."""

    def test_no_alerts_below_capacity(self):
        report = _run(1000.0, monitor=_monitor())
        assert report.alerts == []

    def test_alerts_fire_above_capacity(self):
        monitor = _monitor()
        report = _run(48000.0, monitor=monitor)
        fired = {alert["rule"] for alert in report.alerts}
        assert fired == {"latency-p99", "queue-depth"}
        assert monitor.fired("latency-p99")
        # The report carries the exportable alert log verbatim.
        assert report.to_dict()["alerts_fired"] == len(report.alerts)
        for alert in report.alerts:
            assert alert["fired_at_s"] >= 0.0
            assert alert["value"] > alert["threshold"]

    def test_firing_is_deterministic(self):
        a = _run(48000.0, monitor=_monitor())
        b = _run(48000.0, monitor=_monitor())
        assert a.alerts == b.alerts

    def test_slo_summary_line_appears(self):
        report = _run(48000.0, monitor=_monitor())
        assert any("slo alerts" in line for line in report.lines())


class TestAdmissionReaction:
    """A firing alert switches the backpressure policy (degradation)."""

    def test_degrade_policy_switch_sheds_instead_of_rejecting(self):
        overload = dict(config=_config(queue_capacity=16))
        passive = _run(48000.0, **overload)
        assert passive.shed == 0 and passive.rejected > 0

        monitor = slo_monitor(p99_ms=2.6, window_s=0.02)
        reactive = _run(
            48000.0,
            monitor=monitor,
            degrade_policy="shed-oldest",
            **overload,
        )
        # Before the alert fires the service rejects; after, it sheds.
        assert monitor.fired("latency-p99")
        assert reactive.shed > 0

    def test_policy_transitions_emit_trace_instants(self):
        with obs.capture() as cap:
            monitor = slo_monitor(p99_ms=2.6, window_s=0.02)
            _run(
                48000.0,
                monitor=monitor,
                degrade_policy="shed-oldest",
                config=_config(queue_capacity=16),
            )
        names = {e.name for e in cap.events if e.kind == "instant"}
        assert "serve.slo-fire" in names
        fire = next(e for e in cap.events if e.name == "serve.slo-fire")
        assert fire.args["rule"] == "latency-p99"

    def test_attach_monitor_rejects_unknown_policy(self):
        import pytest

        from repro.cupp.exceptions import CuppUsageError
        from repro.serve.service import SimulationService

        service = SimulationService(_config())
        with pytest.raises(CuppUsageError):
            service.attach_monitor(_monitor(), degrade_policy="explode")


class TestLatencySeries:
    """Satellite: per-request outcomes land in canonical registry series."""

    def test_request_latency_histogram_is_fed(self):
        _run(1000.0)
        snap = obs.get_metrics().snapshot()
        series = snap["histograms"]["repro.request.latency{component=serve}"]
        assert series["count"] > 0

    def test_request_outcome_counter_labels(self):
        _run(48000.0, config=_config(queue_capacity=16))
        counters = obs.get_metrics().snapshot()["counters"]
        done = counters["repro.request.outcome{component=serve,outcome=done}"]
        rejected = counters[
            "repro.request.outcome{component=serve,outcome=rejected}"
        ]
        assert done > 0 and rejected > 0
