"""Per-device stream pipelining in the serving scheduler.

``ServeConfig.streams`` controls how the :class:`DeviceScheduler` uses
each device's timeline.  ``streams=1`` is the legacy serial scheduler —
every launch and memcpy serializes on ``device_busy_until`` — and must
reproduce pre-stream numbers *byte for byte*.  ``streams >= 2`` gives
each device a copy stream and a compute stream, pipelines two
sub-batches deep, and defers result fetches onto the copy engine so
uploads/kernels/downloads overlap across batches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cupp import CuppUsageError
from repro.fault import FaultConfig
from repro.obs.flight import FlightRecorder
from repro.serve.loadgen import run_load
from repro.serve.request import RequestStatus
from repro.serve.service import ServeConfig, SimulationService
from repro.steer.params import DEFAULT_PARAMS
from repro.steer.simulation import Simulation


def service_with(**overrides) -> SimulationService:
    defaults = dict(agents_per_session=16, devices=1, physics=True)
    defaults.update(overrides)
    return SimulationService(ServeConfig(**defaults))


def reference_positions(n: int, seed: int, steps: int) -> np.ndarray:
    ref = Simulation(n, DEFAULT_PARAMS, seed=seed)
    for _ in range(steps):
        ref.update()
    return ref.positions


class TestConfig:
    def test_streams_must_be_positive(self):
        with pytest.raises(CuppUsageError, match="streams"):
            SimulationService(ServeConfig(streams=0))

    def test_single_stream_disables_pipelining(self):
        service = service_with(streams=1)
        assert service.scheduler.pipeline_depth == 1

    def test_default_pipelines_two_deep(self):
        service = service_with()
        assert service.scheduler.streams == 2
        assert service.scheduler.pipeline_depth == 2


class TestPipelining:
    def test_two_batches_in_flight_on_one_device(self):
        # max_batch=1 forces one sub-batch per request; with depth-2
        # pipelining both launch on the lone device before either
        # completes — impossible under the serial scheduler.
        service = service_with(max_batch=1, physics=False)
        service.create_session("a", n=16, seed=1)
        service.create_session("b", n=16, seed=2)
        ra = service.submit("a")
        rb = service.submit("b")
        service.advance(1e-6)

        assert len(service._in_flight) == 2
        assert all(s.device_index == 0 for s in service._in_flight)
        assert service.scheduler.inflight_count[0] == 2
        service.drain()
        assert ra.status is RequestStatus.DONE
        assert rb.status is RequestStatus.DONE

    def test_single_stream_keeps_serial_depth(self):
        service = service_with(max_batch=1, physics=False, streams=1)
        service.create_session("a", n=16, seed=1)
        service.create_session("b", n=16, seed=2)
        service.submit("a")
        service.submit("b")
        service.advance(1e-6)

        # The serial scheduler admits one sub-batch per device.
        assert len(service._in_flight) == 1
        service.drain()
        assert service.stats.completed == 2

    def test_upload_gates_kernels_with_a_stream_wait(self):
        service = service_with(physics=False)
        service.create_session("a", n=16, seed=1)
        service.submit("a")
        service.drain()

        led = obs.get_ledger().snapshot()
        # Cold upload rides the copy stream; the compute stream waits on
        # its completion event before the fused kernels run.
        assert led["count_by_cause"]["stream-wait"] >= 1
        assert led["bytes_by_cause"]["batch-concat"] > 0
        assert led["bytes_by_cause"]["batch-split"] > 0

    def test_flight_tracks_are_stream_tagged(self):
        service = service_with(physics=False)
        flight = FlightRecorder()
        service.attach_flight(flight)
        service.create_session("a", n=16, seed=1)
        service.submit("a")
        service.drain()

        tagged = [e for e in flight.device_events if e.stream is not None]
        assert tagged, "no stream-tagged device events recorded"
        # Copy work and compute work land on distinct streams, so the
        # timeline viewer can split them into per-stream sub-tracks.
        assert len({e.stream for e in tagged}) >= 2
        kinds = {e.kind for e in tagged}
        assert "transfer" in kinds and "busy" in kinds


class TestLoadBehaviour:
    # Committed serve-slo baseline (benchmarks/baseline.json), produced
    # by the pre-stream serial scheduler at these exact knobs.
    BASELINE = dict(
        completed=3913,
        p50_ms=1.2585111471024868,
        p99_ms=2.7092348257584993,
        batches=317,
        launches=1118,
        mean_batch_size=12.343848580441641,
    )
    KNOBS = dict(clients=32, duration_s=0.25, rate_rps=16000.0, seed=0)

    def test_single_stream_reproduces_committed_baseline_exactly(self):
        r = run_load(
            **self.KNOBS, config=ServeConfig(physics=False, streams=1)
        )
        assert r.completed == self.BASELINE["completed"]
        assert r.p50_ms == self.BASELINE["p50_ms"]
        assert r.p99_ms == self.BASELINE["p99_ms"]
        assert r.batches == self.BASELINE["batches"]
        assert r.launches == self.BASELINE["launches"]
        assert r.mean_batch_size == self.BASELINE["mean_batch_size"]

    def test_pipelining_reduces_tail_latency(self):
        serial = run_load(
            **self.KNOBS, config=ServeConfig(physics=False, streams=1)
        )
        piped = run_load(
            **self.KNOBS, config=ServeConfig(physics=False, streams=2)
        )
        assert piped.completed >= serial.completed
        assert piped.p99_ms <= serial.p99_ms
        assert piped.p50_ms <= serial.p50_ms


class TestFaultsUnderPipelining:
    def test_hung_batch_abandons_pipelined_sibling(self):
        # One device, two single-request batches pipelined onto it; the
        # first launch hangs.  The watchdog evicts the device once, the
        # sibling is abandoned (not separately timed out), and both
        # requests recover via retry after probe readmission.
        service = service_with(
            max_batch=1,
            faults=FaultConfig(script={"launch": ["hang"]}),
        )
        service.create_session("a", n=16, seed=1)
        service.create_session("b", n=16, seed=2)
        ra = service.submit("a")
        service.advance(1e-6)  # batch A launches (and hangs)
        rb = service.submit("b")
        service.advance(2e-4)  # batch B pipelines behind it
        assert len(service._in_flight) == 2
        service.drain()

        assert ra.status is RequestStatus.DONE
        assert rb.status is RequestStatus.DONE
        assert service.stats.timeouts == 1
        assert service.stats.evictions == 1
        # Both the hung batch and its abandoned sibling were retried.
        assert service.stats.retries == 2
        assert not service._zombies

        # Recovery is invisible to the client: each session's physics
        # equals a clean single-step reference run.
        np.testing.assert_allclose(
            service.store.get("a").sim.positions,
            reference_positions(16, 1, 1),
        )
        np.testing.assert_allclose(
            service.store.get("b").sim.positions,
            reference_positions(16, 2, 1),
        )

    def test_eviction_resets_pipeline_occupancy(self):
        service = service_with(
            max_batch=1,
            faults=FaultConfig(script={"launch": ["hang"]}),
        )
        service.create_session("a", n=16, seed=1)
        service.submit("a")
        service.advance(1e-6)
        service.drain()
        assert service.scheduler.inflight_count[0] == 0
        assert not service.scheduler.busy
