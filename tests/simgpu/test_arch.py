"""ArchSpec: the paper's hardware constants and derived quantities."""

import pytest

from repro.common.errors import ConfigurationError
from repro.simgpu import ATHLON64_3700, ArchSpec, G80_8800GTS, scaled_arch


class TestG80Spec:
    def test_total_processors_is_96(self):
        # §5.3: "The GPU offers a total number of 12 multiprocessors, each
        # offering 8 processors. This results in a total of 96 processors."
        assert G80_8800GTS.total_processors == 96

    def test_warp_needs_4_cycles_per_instruction(self):
        # §2.2: warp size 32 over 8 processors -> at least 4 clock cycles.
        assert G80_8800GTS.cycles_per_warp_instruction == 4

    def test_clock_rates_match_paper(self):
        # §5.3: GPU at 500 MHz, processors at 1200 MHz.
        assert G80_8800GTS.core_clock_hz == 500e6
        assert G80_8800GTS.shader_clock_hz == 1200e6

    def test_memory_is_640_mib(self):
        assert G80_8800GTS.device_memory_bytes == 640 * 1024 * 1024

    def test_block_limit_is_512_threads(self):
        # §2.2: "A user-defined number of threads (<= 512)".
        assert G80_8800GTS.max_threads_per_block == 512

    def test_cc_1_0_has_no_atomics(self):
        assert not G80_8800GTS.supports_atomics

    def test_peak_gflops_order_of_magnitude_above_cpu(self):
        # Fig 1.1: roughly a factor of 10 between GPU and CPU peak.
        ratio = G80_8800GTS.peak_gflops / ATHLON64_3700.peak_gflops
        assert ratio > 10

    def test_bandwidth_per_core_cycle(self):
        assert G80_8800GTS.bytes_per_core_cycle == pytest.approx(128.0)


class TestValidation:
    def test_warp_must_divide_into_processors(self):
        with pytest.raises(ConfigurationError):
            ArchSpec(warp_size=30, processors_per_mp=8)


class TestScaledArch:
    def test_scaling_multiprocessors(self):
        small = scaled_arch("half", 6)
        assert small.multiprocessors == 6
        assert small.total_processors == 48
        assert small.warp_size == G80_8800GTS.warp_size

    def test_bandwidth_scale(self):
        part = scaled_arch("narrow-bus", 12, bandwidth_scale=0.5)
        assert part.memory_bandwidth_bytes_per_s == pytest.approx(32e9)

    def test_memory_override(self):
        part = scaled_arch("big-mem", 16, memory_bytes=1 << 30)
        assert part.device_memory_bytes == 1 << 30


class TestCpuSpec:
    def test_athlon_single_core_2200mhz(self):
        # §5.3: "The CPU is a single core CPU running at 2200 MHz."
        assert ATHLON64_3700.cores == 1
        assert ATHLON64_3700.clock_hz == 2200e6
