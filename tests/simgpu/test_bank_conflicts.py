"""Shared-memory bank conflicts — the ">=" in Table 2.2's shared row."""

import numpy as np
import pytest

from repro.simgpu import OpClass, SimDevice
from repro.simgpu.isa import lds, sts


def launch_shared_reads(device, index_fn, threads=16, words=256):
    def kernel(ctx):
        sh = ctx.shared_array("s", np.float32, words)
        _ = yield lds(sh, index_fn(ctx.thread_idx.x))

    return device.launch(kernel, 1, threads, ())


class TestBankConflicts:
    def test_sequential_is_conflict_free(self, device):
        # Thread k -> word k: 16 threads over 16 banks.
        r = launch_shared_reads(device, lambda t: t)
        assert r.profile.shared_bank_conflicts == 0
        assert r.profile.op_counts[OpClass.SHARED_READ] == 1

    def test_broadcast_is_free(self, device):
        # All threads read the same word: hardware broadcast.
        r = launch_shared_reads(device, lambda t: 0)
        assert r.profile.shared_bank_conflicts == 0

    def test_stride_2_gives_2_way_conflict(self, device):
        r = launch_shared_reads(device, lambda t: t * 2)
        assert r.profile.op_counts[OpClass.SHARED_READ] == 2
        assert r.profile.shared_bank_conflicts == 1

    def test_stride_16_is_worst_case(self, device):
        # Everyone hits bank 0 with distinct words: 16-way serialization.
        r = launch_shared_reads(device, lambda t: t * 16)
        assert r.profile.op_counts[OpClass.SHARED_READ] == 16
        assert r.profile.shared_bank_conflicts == 15

    def test_odd_stride_is_conflict_free(self, device):
        # Stride coprime with 16 cycles through all banks — the classic
        # padding trick.
        r = launch_shared_reads(device, lambda t: (t * 3) % 48)
        assert r.profile.shared_bank_conflicts == 0

    def test_conflicts_counted_per_half_warp(self, device):
        # 32 threads, thread k -> word k: each half-warp is conflict-free
        # even though lanes 0 and 16 share bank 0 (different half-warps).
        r = launch_shared_reads(device, lambda t: t, threads=32, words=256)
        assert r.profile.shared_bank_conflicts == 0

    def test_writes_conflict_too(self, device):
        def kernel(ctx):
            sh = ctx.shared_array("s", np.float32, 256)
            yield sts(sh, ctx.thread_idx.x * 16, 1.0)

        r = device.launch(kernel, 1, 16, ())
        assert r.profile.op_counts[OpClass.SHARED_WRITE] == 16

    def test_boids_tile_pattern_stays_fast(self, device):
        """The v2 kernel's two shared patterns are both conflict-safe:
        the staging writes stride by 3 floats (coprime with 16) and the
        scan reads broadcast — tiling never pays the serialization."""
        from repro.simgpu.devicelib import lds_vec3, sts_vec3

        def kernel(ctx):
            sh = ctx.shared_array("tile", np.float32, 32 * 3)
            yield from sts_vec3(sh, ctx.thread_idx.x, (1.0, 2.0, 3.0))
            for t in range(4):
                _ = yield from lds_vec3(sh, t)

        r = device.launch(kernel, 1, 32, ())
        assert r.profile.shared_bank_conflicts == 0
