"""Block-size suggestion: the occupancy sweep behind the advisor's
low-occupancy rule (``suggest_block_size``, DESIGN.md §5g)."""

import pytest

from repro.simgpu.arch import G80_8800GTS, scaled_arch
from repro.common.errors import ConfigurationError
from repro.simgpu.multiprocessor import (
    KernelLimits,
    compute_occupancy,
    suggest_block_size,
)


class TestKernelLimits:
    def test_defaults_match_the_pipeline_kernels(self):
        limits = KernelLimits()
        assert limits.registers_per_thread == 10
        assert limits.shared_bytes(128) == 0

    def test_shared_footprint_scales_with_block(self):
        limits = KernelLimits(
            shared_bytes_static=256, shared_bytes_per_thread=12
        )
        assert limits.shared_bytes(64) == 256 + 12 * 64


class TestSuggestBlockSize:
    def test_default_limits_reach_full_occupancy(self):
        tpb, occ = suggest_block_size(G80_8800GTS)
        # 24 warps/MP is the G80 ceiling (768 threads / 32-wide warps).
        assert occ.warps_per_mp == 24
        assert G80_8800GTS.max_threads_per_mp % tpb == 0

    def test_ties_go_to_the_smallest_block(self):
        # 96, 192, 384... all reach 24 warps/MP at 10 regs; the sweep
        # must return the smallest so grids keep multiprocessor coverage.
        tpb, occ = suggest_block_size(G80_8800GTS)
        assert tpb == 96
        assert occ.warps_per_mp == 24

    def test_beats_the_pipeline_default(self):
        # The pipelines launch at 32 threads/block: 8 blocks/MP x 1 warp.
        base = compute_occupancy(G80_8800GTS, 32, 0, 10)
        _tpb, occ = suggest_block_size(G80_8800GTS)
        assert occ.warps_per_mp > base.warps_per_mp

    def test_candidate_restriction_is_honored(self):
        tpb, occ = suggest_block_size(G80_8800GTS, candidates=(32, 64))
        assert tpb == 64
        assert occ.warps_per_mp == compute_occupancy(
            G80_8800GTS, 64, 0, 10
        ).warps_per_mp

    def test_shared_memory_pressure_shifts_the_answer(self):
        # 128 bytes of shared per thread: a 512-thread block wants 64 KiB
        # against a 16 KiB MP — big blocks stop fitting entirely.
        limits = KernelLimits(shared_bytes_per_thread=128)
        tpb, occ = suggest_block_size(G80_8800GTS, limits)
        assert limits.shared_bytes(tpb) * occ.blocks_per_mp <= (
            G80_8800GTS.shared_mem_per_mp
        )

    def test_register_pressure_shifts_the_answer(self):
        greedy = KernelLimits(registers_per_thread=64)
        tpb, occ = suggest_block_size(G80_8800GTS, greedy)
        # 8192 regs / 64 per thread = 128 resident threads = 4 warps max.
        assert occ.warps_per_mp <= 4
        assert tpb * occ.blocks_per_mp <= 128

    def test_nothing_fits_raises(self):
        impossible = KernelLimits(
            shared_bytes_static=G80_8800GTS.shared_mem_per_mp + 1
        )
        with pytest.raises(ConfigurationError):
            suggest_block_size(G80_8800GTS, impossible)

    def test_out_of_range_candidates_are_skipped(self):
        tpb, _occ = suggest_block_size(
            G80_8800GTS, candidates=(0, 64, 100000)
        )
        assert tpb == 64

    def test_scaled_arch_same_answer(self):
        # Occupancy is a per-MP property: scaling the MP count must not
        # change the suggestion.
        small = scaled_arch("half", G80_8800GTS.multiprocessors // 2)
        assert suggest_block_size(small)[0] == suggest_block_size(
            G80_8800GTS
        )[0]
