"""Constant memory, texture references, and their cache models."""

import numpy as np
import pytest

from repro.simgpu import OpClass, SimDevice
from repro.simgpu.caches import (
    CacheSim,
    ConstantMemory,
    ConstantMemoryError,
    TextureReference,
)
from repro.simgpu.isa import ldc, ldt, op
from repro.simgpu.memory import DeviceArrayView, InvalidDeviceAccess


class TestConstantMemory:
    def test_symbol_roundtrip(self, device):
        sym = device.constant.alloc_symbol(np.float32, 8)
        device.constant.write(sym.offset, np.arange(8, dtype=np.float32))
        np.testing.assert_array_equal(sym._raw(), np.arange(8, dtype=np.float32))

    def test_capacity_is_64k(self, device):
        assert device.constant.capacity == 64 * 1024

    def test_exhaustion(self):
        cm = ConstantMemory(256)
        cm.alloc_symbol(np.float32, 32)  # 128 bytes
        cm.alloc_symbol(np.float32, 32)  # 256 bytes
        with pytest.raises(ConstantMemoryError):
            cm.alloc_symbol(np.float32, 1)

    def test_out_of_bounds_index(self, device):
        sym = device.constant.alloc_symbol(np.float32, 4)
        with pytest.raises(InvalidDeviceAccess):
            sym.addr_of(4)


class TestConstantReads:
    def test_broadcast_costs_one_issue(self, device):
        sym = device.constant.alloc_symbol(np.float32, 4)
        device.constant.write(sym.offset, np.array([7.0, 0, 0, 0], np.float32))
        seen = []

        def kernel(ctx):
            v = yield ldc(sym, 0)  # every thread, same address
            seen.append(v)

        result = device.launch(kernel, 1, 32, ())
        assert seen == [7.0] * 32
        # One warp, one distinct address -> one CONSTANT_READ issue.
        assert result.profile.op_counts[OpClass.CONSTANT_READ] == 1

    def test_distinct_addresses_serialize(self, device):
        sym = device.constant.alloc_symbol(np.float32, 32)
        device.constant.write(sym.offset, np.arange(32, dtype=np.float32))

        def kernel(ctx):
            _ = yield ldc(sym, ctx.thread_idx.x)  # 32 distinct addresses

        result = device.launch(kernel, 1, 32, ())
        # Each distinct address is its own issue — why constant memory
        # only suits uniform lookups.
        assert result.profile.op_counts[OpClass.CONSTANT_READ] == 32

    def test_repeat_reads_hit_the_cache(self, device):
        sym = device.constant.alloc_symbol(np.float32, 4)

        def kernel(ctx):
            for _ in range(10):
                _ = yield ldc(sym, 0)

        result = device.launch(kernel, 1, 32, ())
        assert result.profile.constant_misses == 1  # first line touch
        assert result.profile.constant_hits == 9


class TestTextureReads:
    def _view(self, device, n=64):
        ptr = device.memory.alloc(4 * n)
        device.memory.copy_in(ptr, np.arange(n, dtype=np.float32))
        return DeviceArrayView(device.memory, ptr, np.dtype(np.float32), n)

    def test_fetch_returns_bound_data(self, device):
        tex = TextureReference(self._view(device))
        got = []

        def kernel(ctx):
            v = yield ldt(tex, ctx.thread_idx.x)
            got.append(v)

        device.launch(kernel, 1, 8, ())
        assert got == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]

    def test_unbound_fetch_fails(self, device):
        tex = TextureReference()

        def kernel(ctx):
            _ = yield ldt(tex, 0)

        from repro.simgpu import KernelFault

        with pytest.raises(Exception):
            device.launch(kernel, 1, 1, ())

    def test_streaming_reuse_hits_cache(self, device):
        # The Boids tile pattern: every thread scans the same sequence.
        tex = TextureReference(self._view(device, 64))

        def kernel(ctx):
            for j in range(64):
                _ = yield ldt(tex, j)

        result = device.launch(kernel, 1, 32, ())
        # 64 floats = 8 32-byte lines -> 8 misses; everything else hits.
        assert result.profile.texture_misses == 8
        assert result.profile.texture_hits == 32 * 64 - 8
        # Misses became device-memory transactions.
        assert result.profile.global_read_transactions == 8

    def test_texture_traffic_beats_uncoalesced_global(self, device):
        """The ch. 7 motivation in one number: same scan, ~1000x less
        device-memory traffic through the texture cache."""
        view = self._view(device, 64)
        tex = TextureReference(view)

        def tex_kernel(ctx):
            for j in range(64):
                _ = yield ldt(tex, j)

        def global_kernel(ctx):
            from repro.simgpu.isa import ld

            for j in range(64):
                _ = yield ld(view, j)

        r_tex = device.launch(tex_kernel, 1, 32, ())
        r_glob = device.launch(global_kernel, 1, 32, ())
        assert r_glob.profile.bytes_read > 100 * r_tex.profile.bytes_read


class TestCacheSim:
    def test_fifo_eviction(self):
        c = CacheSim(capacity_bytes=64, line_bytes=32)  # 2 lines
        assert not c.access(0)
        assert not c.access(32)
        assert c.access(0)  # hit
        assert not c.access(64)  # evicts line 0 (FIFO)
        assert not c.access(0)  # miss again

    def test_counters(self):
        c = CacheSim(1024, 32)
        c.access(0)
        c.access(4)
        c.access(31)
        assert c.misses == 1
        assert c.hits == 2
