"""CC 1.0 coalescing rules: the memory-transaction accounting that makes
the version-1 neighbor search memory-bound (paper §6.2.1)."""

import numpy as np
import pytest

from repro.simgpu import OpClass
from repro.simgpu.isa import ld, st
from repro.simgpu.memory import DeviceArrayView
from repro.simgpu.warp import MIN_TRANSACTION_BYTES


def make_array(device, dtype, count):
    ptr = device.memory.alloc(np.dtype(dtype).itemsize * count)
    return DeviceArrayView(device.memory, ptr, np.dtype(dtype), count)


class TestReadCoalescing:
    def test_sequential_float32_coalesces(self, device):
        arr = make_array(device, np.float32, 32)

        def kernel(ctx, arr):
            _ = yield ld(arr, ctx.global_thread_id)

        result = device.launch(kernel, 1, 32, (arr,))
        # One warp = two half-warps, each a single transaction.
        assert result.profile.global_read_transactions == 2
        assert result.profile.bytes_read == 2 * 16 * 4

    def test_same_address_does_not_coalesce(self, device):
        # Every thread reads element 0 — the version-1 neighbor-search
        # pattern. G80 serializes: one transaction per thread.
        arr = make_array(device, np.float32, 32)

        def kernel(ctx, arr):
            _ = yield ld(arr, 0)

        result = device.launch(kernel, 1, 32, (arr,))
        assert result.profile.global_read_transactions == 32
        assert result.profile.bytes_read == 32 * MIN_TRANSACTION_BYTES

    def test_strided_access_does_not_coalesce(self, device):
        arr = make_array(device, np.float32, 96)

        def kernel(ctx, arr):
            _ = yield ld(arr, ctx.global_thread_id * 3)  # float3 stride

        result = device.launch(kernel, 1, 32, (arr,))
        assert result.profile.global_read_transactions == 32

    def test_misaligned_base_does_not_coalesce(self, device):
        arr = make_array(device, np.float32, 64)

        def kernel(ctx, arr):
            _ = yield ld(arr, ctx.global_thread_id + 1)  # off by one element

        result = device.launch(kernel, 1, 32, (arr,))
        assert result.profile.global_read_transactions == 32

    def test_partial_warp_counts_active_threads_only(self, device):
        arr = make_array(device, np.float32, 8)

        def kernel(ctx, arr):
            _ = yield ld(arr, ctx.global_thread_id)

        result = device.launch(kernel, 1, 8, (arr,))
        # 8 active threads in the first half-warp, sequential & aligned.
        assert result.profile.global_read_transactions == 1

    def test_float64_coalesces(self, device):
        arr = make_array(device, np.float64, 32)

        def kernel(ctx, arr):
            _ = yield ld(arr, ctx.global_thread_id)

        result = device.launch(kernel, 1, 32, (arr,))
        assert result.profile.global_read_transactions == 2
        assert result.profile.bytes_read == 2 * 16 * 8


class TestWriteAccounting:
    def test_sequential_write_coalesces(self, device):
        arr = make_array(device, np.float32, 32)

        def kernel(ctx, arr):
            yield st(arr, ctx.global_thread_id, 1.0)

        result = device.launch(kernel, 1, 32, (arr,))
        assert result.profile.global_write_transactions == 2
        assert result.profile.op_counts[OpClass.GLOBAL_WRITE] == 1

    def test_scattered_write_pays_per_thread(self, device):
        arr = make_array(device, np.float32, 1024)

        def kernel(ctx, arr):
            i = ctx.global_thread_id
            yield st(arr, (i * 37) % 1024, 1.0)

        result = device.launch(kernel, 1, 32, (arr,))
        assert result.profile.global_write_transactions == 32


class TestTrafficScaling:
    def test_v1_vs_v2_pattern_traffic_ratio(self, device):
        """The broadcast pattern moves ~32x the bytes of the tiled one —
        the root cause of the paper's 3.3x v1->v2 speedup."""
        n = 64
        arr = make_array(device, np.float32, n)

        def broadcast(ctx, arr):
            for j in range(n):
                _ = yield ld(arr, j)

        def tiled(ctx, arr):
            from repro.simgpu.isa import lds, sts, sync as s

            sh = ctx.shared_array("tile", np.float32, 32)
            for base in range(0, n, 32):
                v = yield ld(arr, base + ctx.thread_idx.x)
                yield sts(sh, ctx.thread_idx.x, v)
                yield s()
                for j in range(32):
                    _ = yield lds(sh, j)
                yield s()

        r1 = device.launch(broadcast, 1, 32, (arr,))
        r2 = device.launch(tiled, 1, 32, (arr,))
        assert r1.profile.bytes_read == 32 * MIN_TRANSACTION_BYTES * n
        assert r2.profile.bytes_read == (n // 32) * 2 * 16 * 4
        # 65536 vs 256 bytes: a 256x traffic reduction from tiling.
        assert r1.profile.bytes_read / r2.profile.bytes_read == pytest.approx(256.0)
