"""Property tests of the coalescing analysis and the perf model."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.simgpu import (
    G80_8800GTS,
    KernelCostInputs,
    SimDevice,
    kernel_time,
    scaled_arch,
)
from repro.simgpu.isa import ld
from repro.simgpu.memory import DeviceArrayView


def launch_with_index_map(index_map: "list[int]"):
    device = SimDevice(scaled_arch("t", 2, memory_bytes=1 << 20))
    arr_count = max(index_map) + 1
    ptr = device.memory.alloc(4 * arr_count)
    view = DeviceArrayView(device.memory, ptr, np.dtype(np.float32), arr_count)

    def kernel(ctx):
        _ = yield ld(view, index_map[ctx.global_thread_id])

    return device.launch(kernel, 1, len(index_map), ())


class TestCoalescingProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=32, max_size=32))
    def test_transaction_bounds(self, index_map):
        """For any warp access pattern: between 2 (fully coalesced, one
        per half-warp) and 32 (one per thread) transactions."""
        result = launch_with_index_map(index_map)
        t = result.profile.global_read_transactions
        assert 2 <= t <= 32

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=32, max_size=32))
    def test_bytes_account_for_every_transaction(self, index_map):
        result = launch_with_index_map(index_map)
        p = result.profile
        # Every transaction moves at least the 32-byte minimum segment.
        assert p.bytes_read >= p.global_read_transactions * 32 or (
            p.global_read_transactions == 2 and p.bytes_read >= 2 * 64
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 200))
    def test_sequential_always_coalesces(self, base_misalign):
        # Aligned sequential access is the only 2-transaction pattern.
        index_map = list(range(0, 32))
        result = launch_with_index_map(index_map)
        assert result.profile.global_read_transactions == 2


class TestPerfModelProperties:
    def _inputs(self, **overrides):
        base = dict(
            blocks=12,
            threads_per_block=128,
            issue_cycles=1_000_000,
            global_reads=1000,
            bytes_moved=1_000_000,
        )
        base.update(overrides)
        return KernelCostInputs(**base)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 50))
    def test_more_bytes_never_faster(self, factor):
        slow = kernel_time(self._inputs(bytes_moved=1_000_000 * factor))
        fast = kernel_time(self._inputs())
        assert slow.total_s >= fast.total_s

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 50))
    def test_more_issue_never_faster(self, factor):
        slow = kernel_time(self._inputs(issue_cycles=1_000_000 * factor))
        fast = kernel_time(self._inputs())
        assert slow.total_s >= fast.total_s

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 16), st.integers(1, 16))
    def test_more_multiprocessors_never_slower(self, small_mp, extra):
        inputs = self._inputs(blocks=64)
        slow = kernel_time(inputs, scaled_arch("small", small_mp))
        fast = kernel_time(inputs, scaled_arch("big", small_mp + extra))
        assert fast.total_s <= slow.total_s * (1 + 1e-12)

    def test_time_is_positive(self):
        t = kernel_time(self._inputs())
        assert t.total_s > 0
        assert t.t_issue_s > 0
