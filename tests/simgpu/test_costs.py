"""Cost table: Table 2.2 of the paper, instruction by instruction."""

from repro.simgpu import G80_COSTS, OpClass
from repro.simgpu.costs import CostTable, FLOP_CLASSES


class TestTable22:
    """Each row of Table 2.2 as a direct assertion."""

    def test_fadd_fmul_fmad_iadd_cost_4(self):
        for op in (OpClass.FADD, OpClass.FMUL, OpClass.FMAD, OpClass.IADD):
            assert G80_COSTS.serialized_cost(op) == 4

    def test_bitwise_compare_minmax_cost_4(self):
        for op in (OpClass.BITWISE, OpClass.COMPARE, OpClass.MINMAX):
            assert G80_COSTS.serialized_cost(op) == 4

    def test_reciprocal_and_rsqrt_cost_16(self):
        assert G80_COSTS.serialized_cost(OpClass.RCP) == 16
        assert G80_COSTS.serialized_cost(OpClass.RSQRT) == 16

    def test_register_access_is_free(self):
        assert G80_COSTS.serialized_cost(OpClass.REGISTER) == 0

    def test_shared_memory_at_least_4(self):
        assert G80_COSTS.serialized_cost(OpClass.SHARED_READ) >= 4
        assert G80_COSTS.serialized_cost(OpClass.SHARED_WRITE) >= 4

    def test_global_read_in_400_600_band(self):
        cost = G80_COSTS.serialized_cost(OpClass.GLOBAL_READ)
        assert G80_COSTS.global_read_latency_min <= cost
        assert cost <= G80_COSTS.global_read_latency_max

    def test_global_read_order_of_magnitude_above_arithmetic(self):
        # §2.3: "Reading from device memory costs an order of magnitude
        # more than any other instruction."
        read = G80_COSTS.serialized_cost(OpClass.GLOBAL_READ)
        others = [
            G80_COSTS.serialized_cost(op)
            for op in OpClass
            if op is not OpClass.GLOBAL_READ
        ]
        assert read >= 10 * max(others)

    def test_sync_base_cost_equals_an_addition(self):
        # §2.3: "Synchronizing ... has almost the same cost as an addition."
        assert G80_COSTS.serialized_cost(OpClass.SYNC) == G80_COSTS.serialized_cost(
            OpClass.FADD
        )

    def test_global_write_is_fire_and_forget(self):
        # §2.3: writes only occupy the issue slot, unlike reads.
        assert G80_COSTS.serialized_cost(OpClass.GLOBAL_WRITE) == 4


class TestIssueCost:
    def test_issue_cost_never_includes_read_latency(self):
        assert G80_COSTS.issue_cost(OpClass.GLOBAL_READ) == 4

    def test_custom_table(self):
        table = CostTable(global_read_latency=450, shared_cycles=6)
        assert table.serialized_cost(OpClass.GLOBAL_READ) == 450
        assert table.issue_cost(OpClass.SHARED_READ) == 6


class TestFlopClasses:
    def test_fmad_counts_as_flop(self):
        assert OpClass.FMAD in FLOP_CLASSES

    def test_integer_ops_are_not_flops(self):
        assert OpClass.IADD not in FLOP_CLASSES
        assert OpClass.BITWISE not in FLOP_CLASSES
