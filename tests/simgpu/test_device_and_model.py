"""Launch validation, occupancy, perf model, transfer timeline, devicelib."""

import math

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.simgpu import (
    Dim3,
    G80_8800GTS,
    G80_COSTS,
    KernelCostInputs,
    OpClass,
    SimDevice,
    compute_occupancy,
    kernel_time,
    time_from_profile,
)
from repro.simgpu import devicelib as dl
from repro.simgpu.isa import op
from repro.simgpu.transfer import DeviceTimeline, PcieModel


class TestLaunchValidation:
    def test_block_over_512_threads_rejected(self, device):
        def k(ctx):
            yield op(OpClass.FADD)

        with pytest.raises(ConfigurationError):
            device.launch(k, 1, 513, ())

    def test_3d_grid_rejected(self, device):
        def k(ctx):
            yield op(OpClass.FADD)

        with pytest.raises(ConfigurationError):
            device.launch(k, Dim3(2, 2, 2), 32, ())

    def test_zero_sized_launch_rejected(self, device):
        def k(ctx):
            yield op(OpClass.FADD)

        with pytest.raises(ConfigurationError):
            device.launch(k, 0, 32, ())

    def test_grid_dim_limit(self, device):
        def k(ctx):
            yield op(OpClass.FADD)

        with pytest.raises(ConfigurationError):
            device.launch(k, Dim3(65536, 1, 1), 1, ())

    def test_properties_report_arch(self, big_device):
        props = big_device.properties()
        assert props["multiProcessorCount"] == 12
        assert props["warpSize"] == 32
        assert props["major"], props["minor"] == (1, 0)


class TestOccupancy:
    def test_thread_slot_limit(self):
        occ = compute_occupancy(G80_8800GTS, 256, 0, 1)
        assert occ.blocks_per_mp == 3  # 768 / 256
        assert occ.limited_by == "thread slots"
        assert occ.warps_per_mp == 24

    def test_shared_memory_limit(self):
        occ = compute_occupancy(G80_8800GTS, 64, 9000, 1)
        assert occ.blocks_per_mp == 1
        assert occ.limited_by == "shared memory"

    def test_register_limit(self):
        occ = compute_occupancy(G80_8800GTS, 256, 0, 16)
        assert occ.blocks_per_mp == 2  # 8192 / (16*256)
        assert occ.limited_by == "registers"

    def test_block_slot_limit(self):
        occ = compute_occupancy(G80_8800GTS, 32, 0, 1)
        assert occ.blocks_per_mp == 8
        assert occ.limited_by == "block slots"

    def test_too_many_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_occupancy(G80_8800GTS, 1024)

    def test_warps_round_up(self):
        occ = compute_occupancy(G80_8800GTS, 48, 0, 1)
        assert occ.warps_per_block == 2


class TestPerfModel:
    def test_pure_compute_is_issue_bound(self):
        inputs = KernelCostInputs(
            blocks=12,
            threads_per_block=128,
            issue_cycles=12_000_000,
            global_reads=0,
            bytes_moved=0,
        )
        t = kernel_time(inputs)
        assert t.bound_by == "issue"
        assert t.total_s == pytest.approx(
            1_000_000 / G80_8800GTS.shader_clock_hz
        )

    def test_heavy_traffic_is_memory_bound(self):
        inputs = KernelCostInputs(
            blocks=12,
            threads_per_block=128,
            issue_cycles=1000,
            global_reads=10,
            bytes_moved=640_000_000,
        )
        t = kernel_time(inputs)
        assert t.bound_by == "memory"
        assert t.total_s >= 640_000_000 / G80_8800GTS.memory_bandwidth_bytes_per_s

    def test_latency_fully_exposed_with_single_warp(self):
        # One warp, reads back to back: every read stalls the full latency.
        inputs = KernelCostInputs(
            blocks=1,
            threads_per_block=32,
            issue_cycles=100 * 4,
            global_reads=100,
            bytes_moved=100 * 128,
            shared_bytes_per_block=15_000,  # force 1 block/MP
        )
        t = kernel_time(inputs)
        expected_stall = 100 * (G80_COSTS.global_read_latency) / G80_8800GTS.shader_clock_hz
        assert t.t_exposed_s == pytest.approx(expected_stall, rel=0.05)

    def test_latency_hidden_with_many_warps_and_compute(self):
        # 24 resident warps with lots of arithmetic between reads.
        inputs = KernelCostInputs(
            blocks=12,
            threads_per_block=256,
            issue_cycles=48 * 10_000 * 4,
            global_reads=48 * 10,
            bytes_moved=48 * 10 * 128,
            registers_per_thread=1,
        )
        t = kernel_time(inputs)
        assert t.t_exposed_s == 0.0

    def test_more_mps_reduce_time(self):
        from repro.simgpu import scaled_arch

        inputs = KernelCostInputs(
            blocks=24,
            threads_per_block=128,
            issue_cycles=10_000_000,
            global_reads=0,
            bytes_moved=0,
        )
        fast = kernel_time(inputs, scaled_arch("wide", 16))
        slow = kernel_time(inputs, scaled_arch("narrow", 4))
        assert fast.total_s < slow.total_s

    def test_from_profile_matches_manual_inputs(self, device):
        def k(ctx):
            yield op(OpClass.FADD, 10)

        result = device.launch(k, 2, 64, ())
        t = time_from_profile(result.profile, 2, 64)
        # 2 blocks x 2 warps x 1 round of 10 FADD = 4 issues of 40 cycles.
        assert t.t_issue_s == pytest.approx(4 * 40 / 2 / G80_8800GTS.shader_clock_hz)


class TestTimeline:
    def test_kernel_launch_does_not_block_host(self):
        tl = DeviceTimeline(PcieModel())
        tl.launch_kernel(1.0)
        assert tl.host_time == pytest.approx(tl.launch_overhead_s)
        assert tl.device_busy_until == pytest.approx(
            tl.launch_overhead_s + 1.0
        )

    def test_memcpy_blocks_until_kernel_done(self):
        # §2.2: device memory access blocks the host while a kernel runs.
        tl = DeviceTimeline(PcieModel())
        tl.launch_kernel(0.010)
        spent = tl.memcpy(1_000_000)
        assert tl.host_time >= 0.010
        assert spent >= 0.010 - tl.launch_overhead_s

    def test_host_work_overlaps_device(self):
        tl = DeviceTimeline(PcieModel())
        tl.launch_kernel(0.010)
        tl.host_work(0.010)  # draw while the device updates
        wait = tl.synchronize()
        # Host work covered the kernel duration exactly; no residual wait.
        assert wait == pytest.approx(0.0, abs=1e-12)

    def test_back_to_back_kernels_serialize(self):
        # §2.2: multiple kernels are not executed in parallel.
        tl = DeviceTimeline(PcieModel())
        tl.launch_kernel(0.005)
        tl.launch_kernel(0.005)
        tl.synchronize()
        assert tl.host_time >= 0.010

    def test_transfer_time_scales_with_bytes(self):
        pcie = PcieModel(bandwidth_bytes_per_s=1e9, per_call_overhead_s=1e-5)
        small = pcie.transfer_time(1000)
        big = pcie.transfer_time(1_000_000)
        assert big > small
        assert big == pytest.approx(1e-5 + 1e-3)


class TestDevicelib:
    def _run_single(self, device, gen_fn):
        """Run a 1-thread kernel that stores gen_fn's result via a list."""
        out = []

        def kernel(ctx):
            val = yield from gen_fn()
            out.append(val)

        result = device.launch(kernel, 1, 1, ())
        return out[0], result.profile

    def test_vec3_arithmetic_results(self, device):
        val, _ = self._run_single(device, lambda: dl.add3((1, 2, 3), (4, 5, 6)))
        assert val == (5, 7, 9)
        val, _ = self._run_single(device, lambda: dl.sub3((1, 2, 3), (4, 5, 6)))
        assert val == (-3, -3, -3)
        val, _ = self._run_single(device, lambda: dl.dot3((1, 2, 3), (4, 5, 6)))
        assert val == 32

    def test_vec3_costs(self, device):
        _, p = self._run_single(device, lambda: dl.add3((1, 2, 3), (4, 5, 6)))
        assert p.op_counts[OpClass.FADD] == 3  # three component adds
        _, p = self._run_single(device, lambda: dl.dot3((1, 2, 3), (4, 5, 6)))
        assert p.op_counts[OpClass.FMAD] == 2
        assert p.op_counts[OpClass.FMUL] == 1

    def test_normalize_is_unit_length(self, device):
        val, p = self._run_single(device, lambda: dl.normalize3((3.0, 0.0, 4.0)))
        assert math.isclose(math.hypot(*val), 1.0, rel_tol=1e-12)
        assert p.op_counts[OpClass.RSQRT] == 1

    def test_normalize_zero_stays_zero(self, device):
        val, _ = self._run_single(device, lambda: dl.normalize3((0.0, 0.0, 0.0)))
        assert val == (0.0, 0.0, 0.0)

    def test_length3(self, device):
        val, _ = self._run_single(device, lambda: dl.length3((3.0, 4.0, 0.0)))
        assert math.isclose(val, 5.0, rel_tol=1e-12)
