"""Device runtime library math functions (§3.1.4)."""

import math

import pytest

from repro.simgpu import OpClass, SimDevice
from repro.simgpu import devicelib as dl


def run1(device, gen_fn):
    out = []

    def kernel(ctx):
        out.append((yield from gen_fn()))

    result = device.launch(kernel, 1, 1, ())
    return out[0], result.profile


class TestTranscendentals:
    @pytest.mark.parametrize(
        "fn,x,expected",
        [
            (dl.sinf, math.pi / 6, 0.5),
            (dl.cosf, math.pi / 3, 0.5),
            (dl.expf, 0.0, 1.0),
            (dl.logf, math.e, 1.0),
        ],
    )
    def test_values(self, device, fn, x, expected):
        val, profile = run1(device, lambda: fn(x))
        assert val == pytest.approx(expected)
        assert profile.op_counts[OpClass.TRANSCENDENTAL] == 1

    def test_sfu_cost_matches_rsqrt_class(self, device):
        from repro.simgpu import G80_COSTS

        _, p = run1(device, lambda: dl.sinf(1.0))
        assert p.serialized_cycles(G80_COSTS) == 16


class TestReciprocalAndSqrt:
    def test_rcp(self, device):
        val, p = run1(device, lambda: dl.rcp(4.0))
        assert val == 0.25
        assert p.op_counts[OpClass.RCP] == 1

    def test_rcp_of_zero(self, device):
        val, _ = run1(device, lambda: dl.rcp(0.0))
        assert val == 0.0

    def test_sqrtf_is_rsqrt_plus_mul(self, device):
        val, p = run1(device, lambda: dl.sqrtf(9.0))
        assert val == pytest.approx(3.0)
        assert p.op_counts[OpClass.RSQRT] == 1
        assert p.op_counts[OpClass.FMUL] == 1


class TestConversions:
    def test_float2int_rounds_toward_zero(self, device):
        assert run1(device, lambda: dl.float2int(2.9))[0] == 2
        assert run1(device, lambda: dl.float2int(-2.9))[0] == -2

    def test_int2float(self, device):
        val, p = run1(device, lambda: dl.int2float(7))
        assert val == 7.0
        assert isinstance(val, float)
        assert p.op_counts[OpClass.CONVERT] == 1


class TestMinMaxClamp:
    def test_fminf_fmaxf(self, device):
        assert run1(device, lambda: dl.fminf(2.0, 3.0))[0] == 2.0
        assert run1(device, lambda: dl.fmaxf(2.0, 3.0))[0] == 3.0

    def test_minmax_cost_4(self, device):
        from repro.simgpu import G80_COSTS

        _, p = run1(device, lambda: dl.fminf(1.0, 2.0))
        assert p.serialized_cycles(G80_COSTS) == 4

    @pytest.mark.parametrize(
        "x,expected", [(5.0, 3.0), (-5.0, 0.0), (1.5, 1.5)]
    )
    def test_clampf(self, device, x, expected):
        val, p = run1(device, lambda: dl.clampf(x, 0.0, 3.0))
        assert val == expected
        assert p.op_counts[OpClass.MINMAX] == 2


class TestAutoLoad:
    def test_ld_auto_defaults_to_global(self, device):
        import numpy as np

        from repro.cupp.vector import DeviceVector
        from repro.simgpu.memory import DeviceArrayView

        ptr = device.memory.alloc(16)
        device.memory.copy_in(ptr, np.array([1.0, 2.0, 3.0, 4.0], np.float32))
        dv = DeviceVector(
            DeviceArrayView(device.memory, ptr, np.dtype(np.float32), 4)
        )
        val, p = run1(device, lambda: dl.ld_auto(dv, 2))
        assert val == 3.0
        assert p.global_reads == 1
