"""Dim3 / make_dim3 / index unflattening."""

import pytest

from repro.common.errors import ConfigurationError
from repro.simgpu import Dim3, as_dim3, make_dim3
from repro.simgpu.block import unflatten


class TestDim3:
    def test_defaults_to_one(self):
        # §3.1.3: components left unspecified get the value 1 (dim3).
        assert Dim3() == Dim3(1, 1, 1)
        assert Dim3(5) == Dim3(5, 1, 1)

    def test_volume(self):
        assert Dim3(4, 3, 2).volume == 24
        assert Dim3(0, 5, 5).volume == 0

    def test_iteration(self):
        assert tuple(Dim3(1, 2, 3)) == (1, 2, 3)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Dim3(-1)

    def test_non_int_rejected(self):
        with pytest.raises(ConfigurationError):
            Dim3(1.5)  # type: ignore[arg-type]

    def test_immutable(self):
        with pytest.raises(Exception):
            Dim3(1).x = 2


class TestCoercion:
    def test_make_dim3(self):
        assert make_dim3(10, 10) == Dim3(10, 10, 1)

    def test_as_dim3_from_int(self):
        assert as_dim3(7) == Dim3(7, 1, 1)

    def test_as_dim3_from_tuple(self):
        assert as_dim3((2, 3)) == Dim3(2, 3, 1)

    def test_as_dim3_passthrough(self):
        d = Dim3(1, 2, 3)
        assert as_dim3(d) is d


class TestUnflatten:
    def test_x_fastest(self):
        # CUDA flattens x-fastest: flat = x + y*Dx + z*Dx*Dy.
        dim = Dim3(4, 3, 2)
        assert unflatten(0, dim) == Dim3(0, 0, 0)
        assert unflatten(1, dim) == Dim3(1, 0, 0)
        assert unflatten(4, dim) == Dim3(0, 1, 0)
        assert unflatten(12, dim) == Dim3(0, 0, 1)
        assert unflatten(23, dim) == Dim3(3, 2, 1)

    def test_roundtrip_covers_block(self):
        dim = Dim3(5, 4, 3)
        seen = set()
        for flat in range(dim.volume):
            c = unflatten(flat, dim)
            assert 0 <= c.x < 5 and 0 <= c.y < 4 and 0 <= c.z < 3
            seen.add(tuple(c))
        assert len(seen) == dim.volume
