"""Warp/block execution: lockstep semantics, divergence, barriers."""

import numpy as np
import pytest

from repro.simgpu import (
    BarrierDeadlock,
    Dim3,
    KernelFault,
    OpClass,
    SimDevice,
)
from repro.simgpu.isa import ld, op, st, sync
from repro.simgpu.memory import DeviceArrayView


def make_array(device, dtype, count) -> DeviceArrayView:
    ptr = device.memory.alloc(np.dtype(dtype).itemsize * count)
    return DeviceArrayView(device.memory, ptr, np.dtype(dtype), count)


class TestBasicExecution:
    def test_every_thread_runs(self, device):
        out = make_array(device, np.int32, 64)

        def kernel(ctx, out):
            i = ctx.global_thread_id
            yield op(OpClass.IADD)
            yield st(out, i, i * 2)

        device.launch(kernel, 2, 32, (out,))
        result = device.memory.copy_out(out.ptr, 64 * 4).view(np.int32)
        np.testing.assert_array_equal(result, np.arange(64) * 2)

    def test_load_returns_stored_value(self, device):
        src = make_array(device, np.float32, 32)
        dst = make_array(device, np.float32, 32)
        device.memory.copy_in(src.ptr, np.arange(32, dtype=np.float32))

        def kernel(ctx, src, dst):
            i = ctx.global_thread_id
            v = yield ld(src, i)
            yield op(OpClass.FMUL)
            yield st(dst, i, v * 3.0)

        device.launch(kernel, 1, 32, (src, dst))
        result = device.memory.copy_out(dst.ptr, 128).view(np.float32)
        np.testing.assert_array_equal(result, np.arange(32, dtype=np.float32) * 3)

    def test_builtin_variables(self, device):
        seen = {}

        def kernel(ctx):
            seen[
                (ctx.block_idx.x, ctx.thread_idx.x)
            ] = ctx.global_thread_id
            yield op(OpClass.IADD)

        device.launch(kernel, 3, 4, ())
        assert seen[(2, 3)] == 11
        assert len(seen) == 12

    def test_2d_block_indexing(self, device):
        seen = set()

        def kernel(ctx):
            seen.add((ctx.thread_idx.x, ctx.thread_idx.y, ctx.thread_idx.z))
            yield op(OpClass.IADD)

        device.launch(kernel, 1, Dim3(4, 2, 2), ())
        assert len(seen) == 16
        assert (3, 1, 1) in seen

    def test_non_generator_kernel_rejected(self, device):
        def not_a_kernel(ctx):
            return 42

        with pytest.raises(KernelFault, match="generator"):
            device.launch(not_a_kernel, 1, 1, ())

    def test_kernel_exception_reported_with_thread(self, device):
        def kernel(ctx):
            yield op(OpClass.IADD)
            if ctx.global_thread_id == 3:
                raise ValueError("boom")
            yield op(OpClass.IADD)

        with pytest.raises(KernelFault, match="thread 3"):
            device.launch(kernel, 1, 8, ())


class TestDivergence:
    def test_uniform_flow_has_no_divergence(self, device):
        def kernel(ctx):
            for _ in range(4):
                yield op(OpClass.FADD)

        result = device.launch(kernel, 1, 32, ())
        assert result.profile.divergent_rounds == 0

    def test_two_way_branch_serializes(self, device):
        def kernel(ctx):
            if ctx.global_thread_id % 2 == 0:
                yield op(OpClass.FADD)
            else:
                yield op(OpClass.FMUL)

        result = device.launch(kernel, 1, 32, ())
        assert result.profile.divergent_rounds == 1
        assert result.profile.serialized_groups == 1
        # Both paths execute: the warp pays both instructions.
        assert result.profile.op_counts[OpClass.FADD] == 1
        assert result.profile.op_counts[OpClass.FMUL] == 1

    def test_divergence_is_per_warp_not_per_block(self, device):
        # Threads 0-31 take one path, 32-63 the other: uniform per warp.
        def kernel(ctx):
            if ctx.global_thread_id < 32:
                yield op(OpClass.FADD)
            else:
                yield op(OpClass.FMUL)

        result = device.launch(kernel, 1, 64, ())
        assert result.profile.divergent_rounds == 0

    def test_serialization_multiplies_issue_count(self, device):
        # 4 distinct paths in one warp -> 4 serialized issues of that round.
        def kernel(ctx):
            lane = ctx.global_thread_id % 4
            yield op(OpClass.FADD, count=lane + 1)

        result = device.launch(kernel, 1, 32, ())
        assert result.profile.divergent_rounds == 1
        assert result.profile.serialized_groups == 3

    def test_early_exit_threads_deactivate(self, device):
        # Threads exiting early must not stall the rest of the warp.
        def kernel(ctx):
            if ctx.global_thread_id < 16:
                return
                yield  # pragma: no cover - makes this a generator fn
            yield op(OpClass.FADD)
            yield op(OpClass.FADD)

        result = device.launch(kernel, 1, 32, ())
        assert result.profile.op_counts[OpClass.FADD] == 2


class TestBarrier:
    def test_sync_orders_shared_memory_accesses(self, device):
        # The listing-6.2 pattern: each thread publishes one element, all
        # threads then read every element.
        out = make_array(device, np.int32, 32)

        def kernel(ctx, out):
            sh = ctx.shared_array("vals", np.int32, 32)
            from repro.simgpu.isa import lds, sts

            i = ctx.thread_idx.x
            yield sts(sh, i, i + 1)
            yield sync()
            total = 0
            for j in range(32):
                v = yield lds(sh, j)
                total += v
                yield op(OpClass.IADD)
            yield st(out, i, total)

        device.launch(kernel, 1, 32, (out,))
        result = device.memory.copy_out(out.ptr, 128).view(np.int32)
        np.testing.assert_array_equal(result, np.full(32, 32 * 33 // 2))

    def test_sync_cost_counted_per_warp(self, device):
        def kernel(ctx):
            yield op(OpClass.FADD)
            yield sync()
            yield op(OpClass.FADD)

        result = device.launch(kernel, 1, 64, ())  # 2 warps
        assert result.profile.op_counts[OpClass.SYNC] == 2

    def test_divergent_sync_deadlocks_in_strict_mode(self, device):
        # §3.1.4: __syncthreads in conditional code that does not evaluate
        # identically across the block is undefined.
        def kernel(ctx):
            if ctx.global_thread_id < 16:
                yield sync()
            yield op(OpClass.FADD)

        with pytest.raises(BarrierDeadlock):
            device.launch(kernel, 1, 32, ())

    def test_divergent_sync_tolerated_in_permissive_mode(self, device):
        def kernel(ctx):
            if ctx.global_thread_id < 16:
                yield sync()
            yield op(OpClass.FADD)

        result = device.launch(kernel, 1, 32, (), strict_sync=False)
        # The non-syncing half executes FADD first; the parked half executes
        # it after the (permissively released) barrier: two serialized issues.
        assert result.profile.op_counts[OpClass.FADD] == 2

    def test_multiple_barriers(self, device):
        order = []

        def kernel(ctx):
            order.append(("a", ctx.global_thread_id))
            yield sync()
            order.append(("b", ctx.global_thread_id))
            yield sync()
            order.append(("c", ctx.global_thread_id))
            yield op(OpClass.FADD)

        device.launch(kernel, 1, 64, ())
        phases = [p for p, _ in order]
        # All "a" entries must precede all "b", which precede all "c".
        assert phases.index("b") >= 64
        assert phases.index("c") >= 128


class TestSharedMemory:
    def test_shared_array_is_block_scoped(self, device):
        # Two blocks write the same names; they must not see each other.
        out = make_array(device, np.int32, 2)

        def kernel(ctx, out):
            from repro.simgpu.isa import lds, sts

            sh = ctx.shared_array("x", np.int32, 1)
            yield sts(sh, 0, ctx.block_idx.x + 10)
            yield sync()
            v = yield lds(sh, 0)
            yield st(out, ctx.block_idx.x, v)

        device.launch(kernel, 2, 1, (out,))
        result = device.memory.copy_out(out.ptr, 8).view(np.int32)
        np.testing.assert_array_equal(result, [10, 11])

    def test_shared_capacity_enforced(self, device):
        def kernel(ctx):
            ctx.shared_array("huge", np.float32, 10_000)  # 40 KB > 16 KB
            yield op(OpClass.FADD)

        with pytest.raises(Exception, match="shared memory"):
            device.launch(kernel, 1, 1, ())

    def test_shared_bytes_reported(self, device):
        def kernel(ctx):
            ctx.shared_array("buf", np.float32, 256)
            yield op(OpClass.FADD)

        result = device.launch(kernel, 1, 32, ())
        assert result.shared_bytes_per_block == 1024
