"""Device memory: allocator behaviour, pointer semantics, transfers."""

import numpy as np
import pytest

from repro.simgpu.memory import (
    ALLOC_ALIGN,
    BASE_ADDRESS,
    DeviceMemory,
    DevicePtr,
    InvalidDeviceAccess,
    InvalidFree,
    NULL_PTR,
    OutOfDeviceMemory,
)


@pytest.fixture
def mem() -> DeviceMemory:
    return DeviceMemory(64 * 1024)


class TestAllocation:
    def test_alloc_returns_aligned_nonnull(self, mem):
        p = mem.alloc(100)
        assert p
        assert p.addr % ALLOC_ALIGN == 0
        assert p.addr >= BASE_ADDRESS

    def test_distinct_allocations_do_not_overlap(self, mem):
        a = mem.alloc(1000)
        b = mem.alloc(1000)
        assert abs(a.addr - b.addr) >= 1000
        mem.check_invariants()

    def test_zero_byte_alloc_is_valid(self, mem):
        p = mem.alloc(0)
        assert p
        mem.free(p)

    def test_negative_alloc_rejected(self, mem):
        with pytest.raises(Exception):
            mem.alloc(-1)

    def test_exhaustion_raises_out_of_memory(self, mem):
        with pytest.raises(OutOfDeviceMemory):
            mem.alloc(1 << 30)

    def test_free_then_realloc_reuses_space(self, mem):
        p = mem.alloc(1024)
        addr = p.addr
        mem.free(p)
        q = mem.alloc(1024)
        assert q.addr == addr

    def test_adjacent_frees_coalesce(self, mem):
        a = mem.alloc(1024)
        b = mem.alloc(1024)
        c = mem.alloc(1024)
        mem.free(a)
        mem.free(c)
        mem.free(b)  # middle free must merge both neighbours
        mem.check_invariants()
        big = mem.alloc(3 * 1024)
        assert big.addr == a.addr

    def test_free_null_is_noop(self, mem):
        mem.free(NULL_PTR)

    def test_double_free_raises(self, mem):
        p = mem.alloc(10)
        mem.free(p)
        with pytest.raises(InvalidFree):
            mem.free(p)

    def test_free_interior_pointer_raises(self, mem):
        p = mem.alloc(1024)
        with pytest.raises(InvalidFree):
            mem.free(p + 256)

    def test_free_all_releases_everything(self, mem):
        for _ in range(5):
            mem.alloc(512)
        assert mem.allocation_count == 5
        mem.free_all()
        assert mem.allocation_count == 0
        assert mem.allocated_bytes == 0
        mem.check_invariants()


class TestPointerSemantics:
    def test_pointer_arithmetic(self, mem):
        p = mem.alloc(100)
        q = p + 12
        assert q.addr == p.addr + 12
        assert (q - p) == 12

    def test_null_pointer_is_falsy(self):
        assert not NULL_PTR
        assert DevicePtr(0x1000)

    def test_host_dereference_is_rejected(self, mem):
        # §3.2.3: "Deferring a pointer returned by cudaMalloc on the host
        # side is undefined" — we make it an immediate error.
        p = mem.alloc(100)
        with pytest.raises(InvalidDeviceAccess):
            p[0]


class TestTransfers:
    def test_roundtrip_preserves_bytes(self, mem):
        p = mem.alloc(64)
        data = np.arange(16, dtype=np.float32)
        mem.copy_in(p, data)
        back = mem.copy_out(p, 64).view(np.float32)
        np.testing.assert_array_equal(back, data)

    def test_copy_with_offset_pointer(self, mem):
        p = mem.alloc(64)
        mem.copy_in(p + 8, np.array([7.5], dtype=np.float64))
        back = mem.copy_out(p + 8, 8).view(np.float64)
        assert back[0] == 7.5

    def test_device_to_device_copy(self, mem):
        src = mem.alloc(32)
        dst = mem.alloc(32)
        mem.copy_in(src, np.arange(8, dtype=np.int32))
        mem.copy_device_to_device(dst, src, 32)
        np.testing.assert_array_equal(
            mem.copy_out(dst, 32).view(np.int32), np.arange(8, dtype=np.int32)
        )

    def test_overrun_is_rejected(self, mem):
        p = mem.alloc(16)
        with pytest.raises(InvalidDeviceAccess):
            mem.copy_out(p, ALLOC_ALIGN + 1)

    def test_unmapped_address_rejected(self, mem):
        with pytest.raises(InvalidDeviceAccess):
            mem.copy_out(DevicePtr(4), 4)

    def test_host_pointer_rejected(self, mem):
        with pytest.raises(InvalidDeviceAccess):
            mem.copy_out(0x2000, 4)  # a bare int is a host-side value

    def test_freed_memory_not_readable(self, mem):
        p = mem.alloc(32)
        mem.free(p)
        with pytest.raises(InvalidDeviceAccess):
            mem.copy_out(p, 4)


class TestIntrospection:
    def test_accounting(self, mem):
        before_free = mem.free_bytes
        p = mem.alloc(1000)
        assert mem.allocated_bytes == 1024  # aligned up
        assert mem.free_bytes == before_free - 1024
        mem.free(p)
        assert mem.free_bytes == before_free
