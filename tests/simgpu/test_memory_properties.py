"""Property-based tests of the device-memory allocator (hypothesis).

The allocator must never hand out overlapping blocks, must account every
byte, and must coalesce free ranges — under *any* interleaving of allocs
and frees.  A stateful hypothesis machine drives random interleavings and
re-checks the invariants after every step.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.simgpu.memory import (
    DeviceMemory,
    DevicePtr,
    OutOfDeviceMemory,
)

CAPACITY = 1 << 16


class AllocatorMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.mem = DeviceMemory(CAPACITY)
        self.live: list[DevicePtr] = []

    @rule(nbytes=st.integers(min_value=0, max_value=CAPACITY // 4))
    def alloc(self, nbytes):
        try:
            ptr = self.mem.alloc(nbytes)
        except OutOfDeviceMemory:
            # Legal under fragmentation; invariants still checked below.
            return
        assert all(ptr.addr != p.addr for p in self.live)
        self.live.append(ptr)

    @rule(data=st.data())
    def free_one(self, data):
        if not self.live:
            return
        idx = data.draw(st.integers(0, len(self.live) - 1))
        self.mem.free(self.live.pop(idx))

    @rule()
    def free_all(self):
        self.mem.free_all()
        self.live.clear()

    @invariant()
    def address_space_is_partitioned(self):
        if hasattr(self, "mem"):
            self.mem.check_invariants()

    @invariant()
    def accounting_matches(self):
        if hasattr(self, "mem"):
            assert self.mem.allocation_count == len(self.live)


AllocatorMachine.TestCase.settings = settings(
    max_examples=40,
    stateful_step_count=30,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
TestAllocatorProperties = AllocatorMachine.TestCase


class TestAllocFreeCycle:
    @pytest.mark.parametrize("order", ["fifo", "lifo"])
    def test_full_cycle_restores_all_memory(self, order):
        # Deterministic complement to the stateful machine.
        mem = DeviceMemory(CAPACITY)
        baseline = mem.free_bytes
        ptrs = [mem.alloc(s) for s in (100, 256, 1, 4095, 512)]
        if order == "lifo":
            ptrs.reverse()
        for p in ptrs:
            mem.free(p)
        assert mem.free_bytes == baseline
        mem.check_invariants()
