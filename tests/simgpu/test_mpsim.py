"""The latency-hiding formula vs a cycle-stepping scheduler."""

import pytest

from repro.simgpu.mpsim import analytic_prediction, simulate_mp


class TestScheduler:
    def test_single_warp_exposes_full_latency(self):
        r = simulate_mp(warps=1, reads_per_warp=10, gap_cycles=40)
        # Each read blocks the only warp for ~the whole latency.
        assert r.idle_cycles >= 10 * (500 - 40) * 0.9
        assert r.utilization < 0.2

    def test_many_warps_hide_everything(self):
        r = simulate_mp(warps=24, reads_per_warp=10, gap_cycles=40)
        # 23 other warps x 44 cycles > 500: no idle slots (after warm-up).
        assert r.idle_cycles <= 500  # at most one warm-up exposure
        assert r.utilization > 0.95

    def test_utilization_monotone_in_warps(self):
        utils = [
            simulate_mp(w, 10, 40).utilization for w in (1, 2, 4, 8, 16, 24)
        ]
        assert utils == sorted(utils)

    def test_total_is_at_least_the_issue_work(self):
        for w in (1, 3, 9):
            r = simulate_mp(w, 5, 20)
            assert r.total_cycles >= r.issue_cycles
            assert r.issue_cycles == w * 5 * (20 + 4)


class TestFormulaValidation:
    @pytest.mark.parametrize("warps", [1, 2, 4, 8, 16, 24])
    @pytest.mark.parametrize("gap", [8, 40, 120])
    def test_analytic_matches_schedule(self, warps, gap):
        reads = 20
        sim = simulate_mp(warps, reads, gap)
        model = analytic_prediction(warps, reads, gap)
        # The formula is a steady-state approximation; hold it to 15%
        # plus one latency of warm-up slack.
        assert sim.total_cycles == pytest.approx(model, rel=0.15, abs=600), (
            f"W={warps} g={gap}: simulated {sim.total_cycles}, "
            f"model {model:.0f}"
        )

    def test_crossover_warp_count(self):
        # The formula says hiding completes when (W-1)*(g+4) >= L.
        gap = 60
        w_star = 1 + -(-500 // (gap + 4))  # ceil
        below = simulate_mp(w_star - 2, 20, gap)
        above = simulate_mp(w_star + 2, 20, gap)
        assert below.idle_cycles > above.idle_cycles
        assert above.utilization > 0.95
