"""``InstructionProfile.summary()`` completeness + the coalescing split.

The summary dict rides on every ``cuda.launch:*`` span and feeds the
``repro.prof`` counter capture and the ``obs.analyze`` kernel rollup —
a counter the summary omits is a counter no report can show, so the
completeness test maps the dataclass fields to summary keys mechanically.
"""

import dataclasses

import numpy as np

from repro.simgpu.isa import ld, st
from repro.simgpu.memory import DeviceArrayView
from repro.simgpu.profile import InstructionProfile

#: Dataclass field -> summary key, where the names differ.
_RENAMED = {
    "op_counts": "instructions",  # exposed as the issue total
    "global_read_transactions": "read_transactions",
    "global_write_transactions": "write_transactions",
    "sync_count": "syncs",
    "warps_launched": "warps",
}


def make_array(device, dtype, count):
    ptr = device.memory.alloc(np.dtype(dtype).itemsize * count)
    return DeviceArrayView(device.memory, ptr, np.dtype(dtype), count)


class TestSummaryCompleteness:
    def test_every_field_is_reported(self):
        summary = InstructionProfile().summary()
        for f in dataclasses.fields(InstructionProfile):
            key = _RENAMED.get(f.name, f.name)
            assert key in summary, f"summary() omits {f.name}"

    def test_derived_totals_present(self):
        summary = InstructionProfile().summary()
        for key in ("flops", "global_reads", "global_writes",
                    "shared_accesses"):
            assert key in summary

    def test_summary_matches_merge(self):
        a, b = InstructionProfile(), InstructionProfile()
        a.uncoalesced_read_transactions = 3
        a.uncoalesced_read_bytes = 96
        b.uncoalesced_read_transactions = 5
        b.uncoalesced_read_groups = 1
        a.merge(b)
        s = a.summary()
        assert s["uncoalesced_read_transactions"] == 8
        assert s["uncoalesced_read_groups"] == 1
        assert s["uncoalesced_read_bytes"] == 96


class TestCoalescingSplit:
    def test_strided_read_lands_in_the_read_split(self, device):
        arr = make_array(device, np.float32, 64)

        def kernel(ctx, arr):
            _ = yield ld(arr, 2 * ctx.global_thread_id)

        profile = device.launch(kernel, 1, 32, (arr,)).profile
        assert profile.uncoalesced_read_transactions == 32
        assert profile.uncoalesced_read_groups == 2  # two half-warps
        assert profile.uncoalesced_read_bytes == profile.bytes_read
        # Direction-agnostic counters cover the same traffic.
        assert profile.uncoalesced_transactions == 32

    def test_scattered_write_stays_out_of_the_read_split(self, device):
        arr = make_array(device, np.float32, 64)

        def kernel(ctx, arr):
            yield st(arr, 2 * ctx.global_thread_id, 1.0)

        profile = device.launch(kernel, 1, 32, (arr,)).profile
        assert profile.uncoalesced_transactions == 32
        assert profile.uncoalesced_read_transactions == 0
        assert profile.uncoalesced_read_bytes == 0

    def test_sequential_access_is_fully_coalesced(self, device):
        arr = make_array(device, np.float32, 32)

        def kernel(ctx, arr):
            v = yield ld(arr, ctx.global_thread_id)
            yield st(arr, ctx.global_thread_id, v)

        profile = device.launch(kernel, 1, 32, (arr,)).profile
        assert profile.uncoalesced_transactions == 0
        assert profile.uncoalesced_read_transactions == 0
        # One read + one write per half-warp.
        assert profile.coalesced_transactions == 4
