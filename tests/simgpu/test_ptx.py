"""Pseudo-PTX tracing: the §6.2.3 local-memory detective tool."""

import numpy as np
import pytest

from repro.simgpu import OpClass, SimDevice
from repro.simgpu.isa import ld, op, st, sync
from repro.simgpu.memory import DeviceArrayView
from repro.simgpu.ptx import find_local_spills, trace_kernel


@pytest.fixture
def scratch(device):
    ptr = device.memory.alloc(4 * 64)
    return device, DeviceArrayView(device.memory, ptr, np.dtype(np.float32), 64)


class TestTraceKernel:
    def test_arithmetic_rendered(self, scratch):
        device, _ = scratch

        def k(ctx):
            yield op(OpClass.FADD, 2)
            yield op(OpClass.RSQRT)

        trace = trace_kernel(k, (), device=device)
        listing = trace.listing()
        assert listing.count("add.f32") == 2
        assert "rsqrt.f32" in listing
        assert listing.startswith(".entry k")

    def test_memory_ops_rendered(self, scratch):
        device, arr = scratch

        def k(ctx, a):
            v = yield ld(a, 0)
            yield st(a, 1, v)

        trace = trace_kernel(k, (arr,), device=device)
        assert "ld.global.f32" in trace.listing()
        assert "st.global.f32" in trace.listing()

    def test_sync_rendered_as_bar(self, scratch):
        device, _ = scratch

        def k(ctx):
            yield op(OpClass.IADD)
            yield sync()

        trace = trace_kernel(k, (), threads=2, device=device)
        assert "bar.sync 0" in trace.listing()

    def test_shared_declarations_listed(self, scratch):
        device, _ = scratch

        def k(ctx):
            ctx.shared_array("tile", np.float32, 8)
            yield op(OpClass.IADD)

        trace = trace_kernel(k, (), device=device)
        assert trace.shared_arrays == {"tile": 32}
        assert ".shared .align 4 .b8 __shared_tile[32];" in trace.listing()

    def test_kernel_side_effects_happen(self, scratch):
        device, arr = scratch

        def k(ctx, a):
            yield st(a, 5, 42.0)

        trace_kernel(k, (arr,), device=device)
        assert device.memory.view(arr.ptr, np.float32, 64)[5] == 42.0


class TestLocalSpillDetection:
    def test_spilling_kernel_detected(self, scratch):
        device, _ = scratch

        def spilling(ctx):
            cache = ctx.local_array("cache", np.float32, 28)
            yield st(cache, 0, 1.0)

        trace = trace_kernel(spilling, (), device=device)
        assert trace.spills_to_device_memory
        assert trace.local_arrays == {"cache": 112}
        assert ".local .align 4 .b8 __local_cache[112];" in trace.listing()

    def test_clean_kernel_reports_no_spills(self, scratch):
        device, _ = scratch

        def clean(ctx):
            yield op(OpClass.FADD)

        assert find_local_spills(clean, ()) == {}

    def test_v3_spill_found_v4_clean(self):
        """The paper's actual investigation (§6.2.2): version 3's neighbor
        cache lives in local memory; version 4's does not."""
        import numpy as np

        from repro.cupp.vector import DeviceVector
        from repro.gpusteer import simulate_v3, simulate_v4

        device = SimDevice()

        def make_vec(count):
            ptr = device.memory.alloc(4 * count)
            return DeviceVector(
                DeviceArrayView(device.memory, ptr, np.dtype(np.float32), count)
            )

        n = 32
        positions = make_vec(3 * n)
        forwards = make_vec(3 * n)
        steering = make_vec(3 * n)
        args = (positions, forwards, 9.0, 12.0, 8.0, 8.0, steering)

        v3_spills = find_local_spills(simulate_v3, args, threads=32)
        v4_spills = find_local_spills(simulate_v4, args, threads=32)
        assert "neighbor_cache" in v3_spills
        assert v3_spills["neighbor_cache"] == 7 * 4 * 4  # 7 slots x 4 floats
        assert v4_spills == {}
