"""Property-based tests of the stream/event timeline (hypothesis).

The multi-track :class:`DeviceTimeline` must uphold, under *any*
interleaving of serial ops, stream ops, events, and syncs:

* **clock monotonicity** — ``host_time`` and ``device_busy_until`` never
  go backwards;
* **synchronize idempotence** — a second synchronize (device, stream, or
  event) immediately after a first waits at most one ulp (the legacy
  ``host += target - host`` accumulation can round one ulp short);
* **intra-stream ordering** — ops submitted to one stream never overlap:
  each starts at or after its predecessor's completion;
* **wait-event floors** — work submitted after ``stream_wait_event``
  never starts before the event's recorded timestamp;
* **serial byte-identity** — the legacy null-stream API
  (``launch_kernel``/``memcpy``/``synchronize``) produces *bit-identical*
  clocks to the pre-stream two-scalar timeline (reference implementation
  below), so every experiment that never touches a stream reproduces its
  committed numbers exactly;
* **single-stream equivalence** — a schedule that routes everything
  through one stream matches the serial timeline: exactly for
  kernel/host/sync programs, and to float-ulp precision once copies are
  involved (the serial ``synchronize`` accumulates with ``+=``, the
  stream path waits on the op's end time — same real number, one
  rounding apart).
"""

import math

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.simgpu.transfer import DeviceTimeline, PcieModel


class LegacySerialTimeline:
    """The pre-stream ``DeviceTimeline``: two scalar clocks, verbatim
    arithmetic (modulo the documented zero-byte-copy fix: a 0-byte
    memcpy is a pure sync point, no per-call overhead)."""

    def __init__(self, pcie: PcieModel) -> None:
        self.pcie = pcie
        self.host_time = 0.0
        self.device_busy_until = 0.0
        self.launch_overhead_s = 10e-6

    def host_work(self, seconds: float) -> None:
        self.host_time += seconds

    def launch_kernel(self, duration_s: float) -> None:
        self.host_time += self.launch_overhead_s
        start = max(self.host_time, self.device_busy_until)
        self.device_busy_until = start + duration_s

    def synchronize(self) -> float:
        wait = max(0.0, self.device_busy_until - self.host_time)
        self.host_time += wait
        return wait

    def memcpy(self, nbytes: int) -> float:
        wait = self.synchronize()
        if nbytes == 0:
            return wait
        cost = self.pcie.transfer_time(nbytes)
        self.host_time += cost
        self.device_busy_until = self.host_time
        return wait + cost


DUR = st.floats(
    min_value=0.0, max_value=1e-2, allow_nan=False, allow_infinity=False
)
NBYTES = st.integers(min_value=0, max_value=1 << 22)

SERIAL_OP = st.one_of(
    st.tuples(st.just("host"), DUR),
    st.tuples(st.just("kernel"), DUR),
    st.tuples(st.just("memcpy"), NBYTES),
    st.tuples(st.just("sync"), st.just(0)),
)


@given(st.lists(SERIAL_OP, max_size=40))
def test_serial_api_is_byte_identical_to_legacy_timeline(ops):
    """Refactor regression: the null-stream API on the multi-track
    timeline reproduces the old two-clock arithmetic bit for bit."""
    new = DeviceTimeline(PcieModel())
    old = LegacySerialTimeline(PcieModel())
    for kind, arg in ops:
        if kind == "host":
            new.host_work(arg)
            old.host_work(arg)
        elif kind == "kernel":
            new.launch_kernel(arg)
            old.launch_kernel(arg)
        elif kind == "memcpy":
            assert new.memcpy(arg) == old.memcpy(arg)
        else:
            assert new.synchronize() == old.synchronize()
        assert new.host_time == old.host_time
        assert new.device_busy_until == old.device_busy_until


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("host"), DUR),
            st.tuples(st.just("kernel"), DUR),
            st.tuples(st.just("sync"), st.just(0)),
        ),
        max_size=40,
    )
)
def test_single_stream_kernel_schedule_is_byte_identical_to_serial(ops):
    """Kernels + host work + syncs through one stream: every clock is
    *exactly* the serial timeline's (identical float expressions)."""
    serial = DeviceTimeline(PcieModel())
    streamed = DeviceTimeline(PcieModel())
    s = streamed.create_stream()
    for kind, arg in ops:
        if kind == "host":
            serial.host_work(arg)
            streamed.host_work(arg)
        elif kind == "kernel":
            serial.launch_kernel(arg)
            streamed.stream_launch(s, arg)
        else:
            serial.synchronize()
            streamed.stream_synchronize(s)
        assert streamed.host_time == serial.host_time
        assert streamed.device_busy_until == serial.device_busy_until


@given(st.lists(SERIAL_OP, max_size=40))
def test_single_stream_mixed_schedule_matches_serial_to_ulp(ops):
    """With copies in the mix the two paths compute the same real
    schedule through differently-associated float sums; they agree to
    within a few ulps (and exactly on which ops wait on which)."""
    serial = DeviceTimeline(PcieModel())
    streamed = DeviceTimeline(PcieModel())
    s = streamed.create_stream()
    for kind, arg in ops:
        if kind == "host":
            serial.host_work(arg)
            streamed.host_work(arg)
        elif kind == "kernel":
            serial.launch_kernel(arg)
            streamed.stream_launch(s, arg)
        elif kind == "memcpy":
            serial.memcpy(arg)
            streamed.stream_memcpy(s, arg)
            streamed.stream_synchronize(s)
        else:
            serial.synchronize()
            streamed.stream_synchronize(s)
        # Each synchronize can round one ulp apart; over a 40-op program
        # the drift stays within a few dozen ulps (~1e-17 s here).
        slack = 64 * math.ulp(max(serial.host_time, 1e-9))
        assert abs(streamed.host_time - serial.host_time) <= slack
        assert (
            abs(streamed.device_busy_until - serial.device_busy_until)
            <= slack
        )


class StreamMachine(RuleBasedStateMachine):
    """Random interleavings over three streams and two events."""

    sid = st.integers(0, 2)
    eid = st.integers(0, 1)

    @initialize()
    def setup(self):
        self.tl = DeviceTimeline(PcieModel())
        self.streams = [self.tl.create_stream() for _ in range(3)]
        self.events = [self.tl.create_event() for _ in range(2)]
        #: Completion of the last op submitted per stream.
        self.last_end = [0.0, 0.0, 0.0]
        #: Completion of the last op that occupied device hardware —
        #: zero-byte copies order their stream without touching any
        #: track, so they are excluded here.
        self.last_work_end = [0.0, 0.0, 0.0]
        #: Floor imposed on each stream by past wait_event calls.
        self.wait_floor = [0.0, 0.0, 0.0]
        self.prev_host = 0.0
        self.prev_busy = 0.0

    @rule(sid=sid, dur=DUR)
    def launch(self, sid, dur):
        op = self.tl.stream_launch(self.streams[sid], dur)
        # Intra-stream ordering: never starts before the predecessor.
        assert op.start_s >= self.last_end[sid]
        # Wait-event dependencies are never violated.
        assert op.start_s >= self.wait_floor[sid]
        assert op.end_s == op.start_s + dur
        self.last_end[sid] = op.end_s
        self.last_work_end[sid] = op.end_s

    @rule(sid=sid, nbytes=NBYTES)
    def copy(self, sid, nbytes):
        op = self.tl.stream_memcpy(self.streams[sid], nbytes)
        assert op.start_s >= self.last_end[sid]
        assert op.start_s >= self.wait_floor[sid]
        self.last_end[sid] = op.end_s
        if nbytes:
            self.last_work_end[sid] = op.end_s

    @rule(sid=sid, eid=eid)
    def record(self, sid, eid):
        ts = self.tl.record_event(self.events[eid], self.streams[sid])
        # The event completes no earlier than the stream's queued work.
        assert ts >= self.last_end[sid]

    @rule(eid=eid)
    def record_null(self, eid):
        ts = self.tl.record_event(self.events[eid])
        assert ts >= self.tl.host_time or ts >= self.tl.device_busy_until

    @rule(sid=sid, eid=eid)
    def wait(self, sid, eid):
        event = self.events[eid]
        self.tl.stream_wait_event(self.streams[sid], event)
        if event.timestamp_s is not None:
            self.wait_floor[sid] = max(
                self.wait_floor[sid], event.timestamp_s
            )

    # ``host += (target - host)`` can round one ulp below the target
    # (the legacy arithmetic, kept verbatim for byte-identity), so
    # "drained" and "a second wait is free" hold to within one ulp.
    def _ulp(self, value):
        return math.ulp(max(abs(value), 1e-9))

    @rule(sid=sid)
    def sync_stream(self, sid):
        ready = self.streams[sid].ready_s
        self.tl.stream_synchronize(self.streams[sid])
        assert self.tl.host_time >= ready - self._ulp(ready)
        # Idempotent: the stream is drained, a second wait is free.
        assert self.tl.stream_synchronize(self.streams[sid]) <= self._ulp(
            ready
        )

    @rule(eid=eid)
    def sync_event(self, eid):
        self.tl.event_synchronize(self.events[eid])
        slack = self._ulp(self.tl.host_time)
        assert self.tl.event_synchronize(self.events[eid]) <= slack

    @rule()
    def sync_device(self):
        self.tl.synchronize()
        busy = self.tl.device_busy_until
        assert self.tl.host_time >= busy - self._ulp(busy)
        assert self.tl.synchronize() <= self._ulp(busy)

    @rule(dur=DUR)
    def host(self, dur):
        self.tl.host_work(dur)

    @rule(dur=DUR)
    def serial_launch(self, dur):
        self.tl.launch_kernel(dur)

    @rule(nbytes=NBYTES)
    def serial_memcpy(self, nbytes):
        self.tl.memcpy(nbytes)

    @invariant()
    def clocks_are_monotone(self):
        if not hasattr(self, "tl"):
            return
        assert self.tl.host_time >= self.prev_host
        assert self.tl.device_busy_until >= self.prev_busy
        self.prev_host = self.tl.host_time
        self.prev_busy = self.tl.device_busy_until

    @invariant()
    def device_clock_covers_every_track(self):
        if not hasattr(self, "tl"):
            return
        assert self.tl.device_busy_until >= max(self.last_work_end)


TestStreamTimelineProperties = StreamMachine.TestCase
TestStreamTimelineProperties.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
