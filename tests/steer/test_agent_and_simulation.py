"""Agent vehicle model, world wrap, staged main loop, think frequency."""

import numpy as np
import pytest

from repro.steer import (
    Agent,
    BoidsParams,
    DEFAULT_PARAMS,
    ReferenceSimulation,
    Simulation,
    Vec3,
    apply_steering,
    draw_matrix,
    spawn_agents,
    think_cohort,
    wrap_spherical,
)

PARAMS = DEFAULT_PARAMS


class TestVehicleModel:
    def make_agent(self):
        return Agent(position=Vec3(), forward=Vec3(1, 0, 0), speed=2.0)

    def test_steering_accelerates(self):
        a = self.make_agent()
        apply_steering(a, Vec3(10, 0, 0), PARAMS)
        assert a.speed > 2.0
        assert a.position.x > 0

    def test_force_clipped_to_max(self):
        a = self.make_agent()
        b = self.make_agent()
        apply_steering(a, Vec3(1e6, 0, 0), PARAMS)
        apply_steering(b, Vec3(PARAMS.max_force, 0, 0), PARAMS)
        assert a.speed == pytest.approx(b.speed)

    def test_speed_clipped_to_max(self):
        a = self.make_agent()
        for _ in range(200):
            apply_steering(a, Vec3(PARAMS.max_force, 0, 0), PARAMS)
        assert a.speed <= PARAMS.max_speed * (1 + 1e-9)

    def test_forward_follows_velocity(self):
        a = self.make_agent()
        apply_steering(a, Vec3(0, 1e3, 0), PARAMS)
        assert a.forward.y > 0
        assert a.forward.length() == pytest.approx(1.0)

    def test_zero_steering_is_straight_flight(self):
        a = self.make_agent()
        apply_steering(a, Vec3(), PARAMS)
        assert a.position.distance(Vec3(2.0 * PARAMS.dt, 0, 0)) < 1e-12
        assert a.forward == Vec3(1, 0, 0)

    def test_smoothing_gate_on_first_step(self):
        # First step applies the raw acceleration; later steps blend.
        a = self.make_agent()
        apply_steering(a, Vec3(10, 0, 0), PARAMS)
        first = a.smoothed_accel
        apply_steering(a, Vec3(10, 0, 0), PARAMS)
        second = a.smoothed_accel
        assert first.x == pytest.approx(10.0)
        assert second.x == pytest.approx(10.0)  # blend of equal values


class TestWorldWrap:
    def test_inside_unchanged(self):
        p = Vec3(10, 0, 0)
        assert wrap_spherical(p, 50.0) == p

    def test_outside_mirrors_to_opposite_point(self):
        # §5.1: re-enter at the diametric opposite point.
        p = Vec3(51, 0, 0)
        assert wrap_spherical(p, 50.0) == Vec3(-51, 0, 0)

    def test_boundary_is_inside(self):
        p = Vec3(50, 0, 0)
        assert wrap_spherical(p, 50.0) == p


class TestSpawn:
    def test_deterministic_given_seed(self):
        a = spawn_agents(16, PARAMS, seed=42)
        b = spawn_agents(16, PARAMS, seed=42)
        assert all(
            x.position == y.position and x.forward == y.forward
            for x, y in zip(a, b)
        )

    def test_all_inside_world(self):
        for agent in spawn_agents(64, PARAMS, seed=1):
            assert agent.position.length() <= PARAMS.world_radius
            assert agent.forward.length() == pytest.approx(1.0)


class TestThinkCohort:
    def test_disabled_means_everyone(self):
        assert len(think_cohort(100, 3, 1)) == 100

    def test_tenth_of_agents_per_step(self):
        sizes = [len(think_cohort(100, s, 10)) for s in range(10)]
        assert sizes == [10] * 10

    def test_cohorts_partition_population(self):
        seen = np.concatenate([think_cohort(100, s, 10) for s in range(10)])
        assert sorted(seen) == list(range(100))

    def test_cycle_repeats(self):
        np.testing.assert_array_equal(
            think_cohort(64, 0, 10), think_cohort(64, 10, 10)
        )


class TestSimulationEngines:
    def test_numpy_matches_reference_one_step(self):
        n = 24
        ref = ReferenceSimulation(n, PARAMS, seed=9)
        fast = Simulation(n, PARAMS, seed=9, engine="numpy")
        ref.update()
        fast.update()
        a, b = ref.state_snapshot(), fast.state_snapshot()
        np.testing.assert_allclose(a["positions"], b["positions"], atol=1e-9)
        np.testing.assert_allclose(a["forwards"], b["forwards"], atol=1e-9)
        np.testing.assert_allclose(a["speeds"], b["speeds"], atol=1e-9)

    def test_numpy_matches_reference_several_steps(self):
        n = 16
        ref = ReferenceSimulation(n, PARAMS, seed=3)
        fast = Simulation(n, PARAMS, seed=3, engine="numpy")
        for _ in range(5):
            ref.update()
            fast.update()
        a, b = ref.state_snapshot(), fast.state_snapshot()
        np.testing.assert_allclose(a["positions"], b["positions"], atol=1e-6)

    def test_kdtree_engine_matches_numpy_engine(self):
        n = 40
        a = Simulation(n, PARAMS, seed=5, engine="numpy")
        b = Simulation(n, PARAMS, seed=5, engine="kdtree")
        for _ in range(3):
            a.update()
            b.update()
        np.testing.assert_allclose(
            a.positions, b.positions, atol=1e-9
        )

    def test_think_frequency_equivalence(self):
        # With think frequency, the reference and numpy engines still agree.
        params = PARAMS.with_think_frequency(4)
        ref = ReferenceSimulation(12, params, seed=2)
        fast = Simulation(12, params, seed=2, engine="numpy")
        for _ in range(6):
            ref.update()
            fast.update()
        np.testing.assert_allclose(
            ref.state_snapshot()["positions"], fast.positions, atol=1e-6
        )

    def test_agents_stay_in_world(self):
        sim = Simulation(64, PARAMS, seed=7, engine="numpy")
        sim.run(20)
        radii = np.linalg.norm(sim.positions, axis=1)
        # One step past the boundary is possible before wrapping; bound it.
        assert radii.max() <= PARAMS.world_radius + PARAMS.max_speed * PARAMS.dt

    def test_speeds_bounded(self):
        sim = Simulation(64, PARAMS, seed=7, engine="numpy")
        sim.run(20)
        assert sim.speeds.max() <= PARAMS.max_speed * (1 + 1e-9)

    def test_flock_polarizes_over_time(self):
        # Emergent group behaviour (§5.1): alignment drives the flock
        # toward a common heading, raising global polarization
        # |mean(forward)| — the classic Boids order parameter.  Use a
        # denser world so agents actually interact.
        import dataclasses

        dense = dataclasses.replace(PARAMS, world_radius=18.0)
        sim = Simulation(128, dense, seed=11, engine="kdtree")

        def polarization():
            return float(np.linalg.norm(sim.forwards.mean(axis=0)))

        before = polarization()
        sim.run(80)
        assert polarization() > before

    def test_profile_accumulates(self):
        sim = Simulation(32, PARAMS, seed=1, engine="numpy")
        sim.run(3)
        assert sim.profile.cycles["neighbor_search"] > 0
        assert sim.profile.cycles["draw"] > 0

    def test_draw_matrices_shape_and_orthonormality(self):
        sim = Simulation(8, PARAMS, seed=4, engine="numpy")
        sim.update()
        mats = sim.draw_stage()
        assert mats.shape == (8, 4, 4)
        rot = mats[:, :3, :3]
        eye = np.einsum("nij,nkj->nik", rot, rot)
        np.testing.assert_allclose(eye, np.broadcast_to(np.eye(3), (8, 3, 3)), atol=1e-9)

    def test_reference_draw_matrix_matches_numpy(self):
        ref = ReferenceSimulation(6, PARAMS, seed=8)
        fast = Simulation(6, PARAMS, seed=8, engine="numpy")
        ref.update()
        fast.update()
        ref_mats = np.array(ref.draw_matrices())
        fast_mats = fast.draw_stage()
        np.testing.assert_allclose(ref_mats, fast_mats, atol=1e-9)
