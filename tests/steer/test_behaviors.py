"""Steering behaviors: listing semantics + pure/numpy equivalence."""

import numpy as np
import pytest

from repro.steer import (
    BoidsParams,
    NO_NEIGHBOR,
    Vec3,
    alignment_np,
    alignment_pure,
    cohesion_np,
    cohesion_pure,
    flocking_np,
    flocking_pure,
    neighbor_search_all_numpy,
    separation_np,
    separation_pure,
)

PARAMS = BoidsParams()


class TestSeparation:
    def test_pushes_away_from_single_neighbor(self):
        pos = [Vec3(0, 0, 0), Vec3(2, 0, 0)]
        steer = separation_pure(0, pos, [1] + [NO_NEIGHBOR] * 6)
        assert steer.x < 0  # away from the neighbor
        assert steer.y == steer.z == 0

    def test_one_over_d_falloff(self):
        # A neighbor at distance d contributes magnitude 1/d (listing 5.3).
        near = separation_pure(
            0, [Vec3(), Vec3(1, 0, 0)], [1] + [NO_NEIGHBOR] * 6
        )
        far = separation_pure(
            0, [Vec3(), Vec3(4, 0, 0)], [1] + [NO_NEIGHBOR] * 6
        )
        assert near.length() == pytest.approx(1.0)
        assert far.length() == pytest.approx(0.25)

    def test_symmetric_neighbors_cancel(self):
        pos = [Vec3(), Vec3(3, 0, 0), Vec3(-3, 0, 0)]
        steer = separation_pure(0, pos, [1, 2] + [NO_NEIGHBOR] * 5)
        assert steer.length() == pytest.approx(0.0, abs=1e-12)

    def test_no_neighbors_is_zero(self):
        assert separation_pure(0, [Vec3()], [NO_NEIGHBOR] * 7) == Vec3()


class TestCohesion:
    def test_pulls_toward_neighbors(self):
        pos = [Vec3(), Vec3(4, 0, 0), Vec3(2, 2, 0)]
        steer = cohesion_pure(0, pos, [1, 2] + [NO_NEIGHBOR] * 5)
        assert steer == Vec3(6, 2, 0)  # sum of offsets (listing 5.4)


class TestAlignment:
    def test_matches_neighbor_heading(self):
        fwd = [Vec3(1, 0, 0), Vec3(0, 1, 0), Vec3(0, 1, 0)]
        steer = alignment_pure(0, fwd, [1, 2] + [NO_NEIGHBOR] * 5)
        # sum(neighbors.forward) - count * me.forward  (listing 5.5)
        assert steer == Vec3(-2, 2, 0)

    def test_aligned_flock_gives_zero(self):
        fwd = [Vec3(0, 0, 1)] * 4
        steer = alignment_pure(0, fwd, [1, 2, 3] + [NO_NEIGHBOR] * 4)
        assert steer.length() == pytest.approx(0.0, abs=1e-12)


class TestFlocking:
    def test_weighted_combination(self):
        # Agents in a line; verify flocking = wA*n(sep)+wB*n(ali)+wC*n(coh).
        pos = [Vec3(), Vec3(3, 0, 0)]
        fwd = [Vec3(1, 0, 0), Vec3(0, 1, 0)]
        hood = [1] + [NO_NEIGHBOR] * 6
        f = flocking_pure(0, pos, fwd, hood, PARAMS)
        expected = (
            separation_pure(0, pos, hood).normalize() * PARAMS.separation_weight
            + alignment_pure(0, fwd, hood).normalize() * PARAMS.alignment_weight
            + cohesion_pure(0, pos, hood).normalize() * PARAMS.cohesion_weight
        )
        assert f.distance(expected) < 1e-12

    def test_isolated_agent_gets_zero_steering(self):
        f = flocking_pure(
            0, [Vec3()], [Vec3(1, 0, 0)], [NO_NEIGHBOR] * 7, PARAMS
        )
        assert f.length() == pytest.approx(0.0, abs=1e-12)


class TestNumpyEquivalence:
    @pytest.fixture
    def cloud(self):
        rng = np.random.default_rng(5)
        n = 48
        positions = rng.uniform(-12, 12, size=(n, 3))
        forwards = rng.normal(size=(n, 3))
        forwards /= np.linalg.norm(forwards, axis=1, keepdims=True)
        neighbors = neighbor_search_all_numpy(positions, PARAMS)
        return positions, forwards, neighbors

    def test_separation_matches_pure(self, cloud):
        positions, _forwards, neighbors = cloud
        pv = [Vec3.from_tuple(p) for p in positions]
        fast = separation_np(positions, neighbors)
        for i in range(len(pv)):
            ref = separation_pure(i, pv, list(neighbors[i]))
            assert np.allclose(fast[i], ref.as_tuple(), atol=1e-10)

    def test_cohesion_matches_pure(self, cloud):
        positions, _forwards, neighbors = cloud
        pv = [Vec3.from_tuple(p) for p in positions]
        fast = cohesion_np(positions, neighbors)
        for i in range(len(pv)):
            ref = cohesion_pure(i, pv, list(neighbors[i]))
            assert np.allclose(fast[i], ref.as_tuple(), atol=1e-10)

    def test_alignment_matches_pure(self, cloud):
        positions, forwards, neighbors = cloud
        fv = [Vec3.from_tuple(f) for f in forwards]
        fast = alignment_np(forwards, neighbors)
        for i in range(len(fv)):
            ref = alignment_pure(i, fv, list(neighbors[i]))
            assert np.allclose(fast[i], ref.as_tuple(), atol=1e-10)

    def test_flocking_matches_pure(self, cloud):
        positions, forwards, neighbors = cloud
        pv = [Vec3.from_tuple(p) for p in positions]
        fv = [Vec3.from_tuple(f) for f in forwards]
        fast = flocking_np(positions, forwards, neighbors, PARAMS)
        for i in range(len(pv)):
            ref = flocking_pure(i, pv, fv, list(neighbors[i]), PARAMS)
            assert np.allclose(fast[i], ref.as_tuple(), atol=1e-9)
