"""The wider OpenSteer behavior library (seek/flee/pursue/evade/arrival/
wander/obstacle avoidance/path following)."""

import math

import pytest

from repro.steer.behaviors_extra import (
    Wander,
    arrival,
    avoid_sphere,
    evade,
    flee,
    follow_path,
    pursue,
    seek,
)
from repro.steer.vec3 import Vec3

MAX_SPEED = 9.0
ORIGIN = Vec3()
STILL = Vec3()


class TestSeekFlee:
    def test_seek_points_at_target(self):
        s = seek(ORIGIN, STILL, Vec3(10, 0, 0), MAX_SPEED)
        assert s.normalize().distance(Vec3(1, 0, 0)) < 1e-12
        assert s.length() == pytest.approx(MAX_SPEED)

    def test_flee_points_away(self):
        s = flee(ORIGIN, STILL, Vec3(10, 0, 0), MAX_SPEED)
        assert s.normalize().distance(Vec3(-1, 0, 0)) < 1e-12

    def test_seek_corrects_current_velocity(self):
        # Moving sideways: the steering must cancel the lateral component.
        s = seek(ORIGIN, Vec3(0, 5, 0), Vec3(10, 0, 0), MAX_SPEED)
        assert s.y < 0

    def test_seek_and_flee_are_opposite(self):
        target = Vec3(3, 4, 5)
        a = seek(ORIGIN, STILL, target, MAX_SPEED)
        b = flee(ORIGIN, STILL, target, MAX_SPEED)
        assert (a + b).length() < 1e-9


class TestPursueEvade:
    def test_pursuit_leads_a_crossing_target(self):
        # Target ahead moving +y: pure seek points +x, pursuit must lead
        # it and gain a +y component.
        s_seek = seek(ORIGIN, STILL, Vec3(10, 0, 0), MAX_SPEED)
        s_pursue = pursue(ORIGIN, STILL, Vec3(10, 0, 0), Vec3(0, 5, 0), MAX_SPEED)
        assert s_seek.y == pytest.approx(0.0)
        assert s_pursue.y > 0

    def test_pursuit_of_static_target_is_seek(self):
        a = pursue(ORIGIN, STILL, Vec3(10, 2, 0), STILL, MAX_SPEED)
        b = seek(ORIGIN, STILL, Vec3(10, 2, 0), MAX_SPEED)
        assert a.distance(b) < 1e-9

    def test_evade_mirrors_pursuit(self):
        p = pursue(ORIGIN, STILL, Vec3(10, 0, 0), Vec3(0, 5, 0), MAX_SPEED)
        e = evade(ORIGIN, STILL, Vec3(10, 0, 0), Vec3(0, 5, 0), MAX_SPEED)
        assert (p + e).length() < 1e-9


class TestArrival:
    def test_far_away_is_full_speed_seek(self):
        s = arrival(ORIGIN, STILL, Vec3(100, 0, 0), MAX_SPEED, slowing_distance=10)
        assert s.length() == pytest.approx(MAX_SPEED)

    def test_decelerates_inside_slowing_radius(self):
        s = arrival(ORIGIN, STILL, Vec3(5, 0, 0), MAX_SPEED, slowing_distance=10)
        assert s.length() == pytest.approx(MAX_SPEED / 2)

    def test_parks_on_the_target(self):
        s = arrival(Vec3(1, 1, 1), Vec3(2, 0, 0), Vec3(1, 1, 1), MAX_SPEED, 10)
        assert s == Vec3(-2, 0, 0)  # cancels the residual velocity

    def test_converges_in_simulation(self):
        # Integrate a toy point mass: it must settle near the target.
        pos, vel = Vec3(), Vec3()
        target = Vec3(20, 0, 0)
        for _ in range(600):
            steer = arrival(pos, vel, target, MAX_SPEED, slowing_distance=8)
            vel = (vel + steer * (1 / 30)).truncate_length(MAX_SPEED)
            pos = pos + vel * (1 / 30)
        assert pos.distance(target) < 1.0
        assert vel.length() < 1.5


class TestWander:
    def test_deterministic_given_seed(self):
        w1, w2 = Wander(seed=5), Wander(seed=5)
        f = Vec3(1, 0, 0)
        for _ in range(10):
            assert w1(f).distance(w2(f)) < 1e-12

    def test_steering_stays_bounded(self):
        w = Wander(wander_radius=1.0, wander_distance=2.0, seed=1)
        f = Vec3(0, 0, 1)
        for _ in range(200):
            s = w(f)
            assert s.length() <= 3.0 + 1e-9  # distance + radius

    def test_direction_varies_over_time(self):
        w = Wander(seed=2)
        f = Vec3(1, 0, 0)
        outputs = {w(f).normalize().as_tuple() for _ in range(50)}
        assert len(outputs) > 10  # it actually wanders

    def test_biased_ahead(self):
        # The wander circle sits in front of the agent.
        w = Wander(wander_radius=1.0, wander_distance=3.0, seed=3)
        f = Vec3(1, 0, 0)
        assert all(w(f).x > 0 for _ in range(100))


class TestObstacleAvoidance:
    def test_clear_path_needs_no_steering(self):
        s = avoid_sphere(
            ORIGIN, Vec3(1, 0, 0), 5.0, Vec3(0, 50, 0), 3.0, 0.5, 2.0
        )
        assert s == Vec3()

    def test_obstacle_behind_is_ignored(self):
        s = avoid_sphere(
            ORIGIN, Vec3(1, 0, 0), 5.0, Vec3(-10, 0, 0), 3.0, 0.5, 2.0
        )
        assert s == Vec3()

    def test_collision_course_steers_laterally(self):
        s = avoid_sphere(
            ORIGIN, Vec3(1, 0, 0), 5.0, Vec3(8, 1.0, 0), 3.0, 0.5, 2.0
        )
        assert s.y < 0  # away from the off-center obstacle
        assert abs(s.dot(Vec3(1, 0, 0))) < 1e-9  # purely lateral

    def test_dead_center_still_escapes(self):
        s = avoid_sphere(
            ORIGIN, Vec3(1, 0, 0), 5.0, Vec3(8, 0, 0), 3.0, 0.5, 2.0
        )
        assert s.length() > 0
        assert abs(s.dot(Vec3(1, 0, 0))) < 1e-9

    def test_avoidance_prevents_collision_in_simulation(self):
        pos, fwd, speed = Vec3(), Vec3(1, 0, 0), 6.0
        center, radius = Vec3(12, 0.5, 0), 3.0
        min_clearance = math.inf
        vel = fwd * speed
        for _ in range(200):
            s = avoid_sphere(pos, vel.normalize(), vel.length(), center, radius, 0.5, 2.0)
            vel = (vel + s * (1 / 30)).truncate_length(9.0)
            pos = pos + vel * (1 / 30)
            min_clearance = min(min_clearance, pos.distance(center) - radius)
        assert min_clearance > 0.3  # never hit the sphere


class TestPathFollowing:
    WAYPOINTS = [Vec3(10, 0, 0), Vec3(10, 10, 0), Vec3(0, 10, 0)]

    def test_seeks_current_waypoint(self):
        s, idx = follow_path(ORIGIN, STILL, self.WAYPOINTS, 0, 1.0, MAX_SPEED)
        assert idx == 0
        assert s.normalize().distance(Vec3(1, 0, 0)) < 1e-9

    def test_advances_on_arrival(self):
        near_first = Vec3(9.5, 0, 0)
        _s, idx = follow_path(near_first, STILL, self.WAYPOINTS, 0, 1.0, MAX_SPEED)
        assert idx == 1

    def test_last_waypoint_uses_arrival(self):
        # Close to the final waypoint the steering must decelerate.
        near_last = Vec3(0.5, 10, 0)
        s, idx = follow_path(near_last, STILL, self.WAYPOINTS, 2, 1.0, MAX_SPEED)
        assert idx == 2
        assert s.length() < MAX_SPEED

    def test_traverses_whole_path_in_simulation(self):
        pos, vel, idx = Vec3(), Vec3(), 0
        for _ in range(900):
            s, idx = follow_path(pos, vel, self.WAYPOINTS, idx, 1.5, MAX_SPEED)
            vel = (vel + s * (1 / 30)).truncate_length(MAX_SPEED)
            pos = pos + vel * (1 / 30)
        assert idx == len(self.WAYPOINTS) - 1
        assert pos.distance(self.WAYPOINTS[-1]) < 2.0

    def test_empty_path(self):
        s, idx = follow_path(ORIGIN, STILL, [], 0, 1.0, MAX_SPEED)
        assert s == Vec3() and idx == 0
