"""OpenSteerDemo: clock, annotation, plugin registry, main loop."""

import pytest

from repro.steer.demo import (
    Annotation,
    Clock,
    DemoError,
    OpenSteerDemo,
    PlugIn,
)
from repro.steer.plugins import BoidsPlugIn, PursuitPlugIn


class RecordingPlugIn(PlugIn):
    name = "recorder"

    def __init__(self):
        self.calls = []

    def open(self, annotation):
        self.calls.append("open")

    def simulation_substage(self, dt):
        self.calls.append(("sim", dt))

    def modification_substage(self, dt):
        self.calls.append(("mod", dt))

    def redraw(self, annotation):
        self.calls.append("draw")
        annotation.text((0, 0, 0), "frame")

    def close(self):
        self.calls.append("close")


class TestClock:
    def test_fixed_timestep(self):
        c = Clock(dt=0.5)
        assert c.tick() == 0.5
        assert c.tick() == 0.5
        assert c.elapsed == 1.0
        assert c.step_count == 2

    def test_pause_freezes_simulation_time(self):
        c = Clock()
        c.toggle_pause()
        assert c.tick() == 0.0
        assert c.step_count == 0
        c.toggle_pause()
        assert c.tick() > 0


class TestAnnotation:
    def test_frames_accumulate(self):
        a = Annotation()
        a.line((0, 0, 0), (1, 0, 0))
        a.circle((0, 0, 0), 2.0, "red")
        a.end_frame()
        a.text((0, 0, 0), "hi")
        a.end_frame()
        assert len(a.frames) == 2
        assert [i.kind for i in a.frames[0]] == ["line", "circle"]
        assert a.last_frame[0].kind == "text"


class TestRegistry:
    def test_select_opens_plugin(self):
        demo = OpenSteerDemo()
        p = RecordingPlugIn()
        demo.register(p)
        demo.select("recorder")
        assert p.calls == ["open"]

    def test_duplicate_name_rejected(self):
        demo = OpenSteerDemo()
        demo.register(RecordingPlugIn())
        with pytest.raises(DemoError, match="already"):
            demo.register(RecordingPlugIn())

    def test_unknown_plugin(self):
        with pytest.raises(DemoError, match="no plugin"):
            OpenSteerDemo().select("nope")

    def test_no_active_plugin(self):
        with pytest.raises(DemoError, match="selected"):
            OpenSteerDemo().run_frame()

    def test_switching_closes_previous(self):
        demo = OpenSteerDemo()
        a, b = RecordingPlugIn(), RecordingPlugIn()
        b.name = "other"
        demo.register(a)
        demo.register(b)
        demo.select("recorder")
        demo.select("other")
        assert "close" in a.calls


class TestMainLoop:
    def test_stage_order_per_frame(self):
        # Fig 5.4: simulation substage -> modification substage -> draw.
        demo = OpenSteerDemo()
        p = RecordingPlugIn()
        demo.register(p)
        demo.select("recorder")
        demo.run(2)
        stages = [c[0] if isinstance(c, tuple) else c for c in p.calls[1:]]
        assert stages == ["sim", "mod", "draw", "sim", "mod", "draw"]

    def test_paused_clock_still_draws(self):
        demo = OpenSteerDemo()
        p = RecordingPlugIn()
        demo.register(p)
        demo.select("recorder")
        demo.clock.toggle_pause()
        demo.run(3)
        stages = [c for c in p.calls[1:]]
        assert stages == ["draw", "draw", "draw"]

    def test_annotations_recorded_per_frame(self):
        demo = OpenSteerDemo()
        demo.register(RecordingPlugIn())
        demo.select("recorder")
        demo.run(4)
        assert len(demo.annotation.frames) == 4


class TestBuiltinPlugins:
    def test_boids_plugin_runs(self):
        demo = OpenSteerDemo()
        demo.register(BoidsPlugIn(n=32, seed=1, engine="numpy"))
        demo.select("Boids")
        demo.run(3)
        plugin = demo.active
        assert plugin.sim.step_count == 3
        # One line per agent plus the HUD text.
        assert len(demo.annotation.last_frame) == 33

    def test_boids_plugin_matches_bare_simulation(self):
        import numpy as np

        from repro.steer import Simulation

        demo = OpenSteerDemo(Clock(dt=1 / 60))
        demo.register(BoidsPlugIn(n=24, seed=5, engine="numpy"))
        demo.select("Boids")
        demo.run(4)

        bare = Simulation(24, seed=5, engine="numpy")
        for _ in range(4):
            bare.update()
        np.testing.assert_allclose(
            demo.active.sim.positions, bare.positions, atol=1e-12
        )

    def test_pursuit_plugin_captures(self):
        demo = OpenSteerDemo(Clock(dt=1 / 30))
        demo.register(PursuitPlugIn())
        demo.select("Pursuit")
        for _ in range(600):
            demo.run_frame()
            if demo.active.captured:
                break
        assert demo.active.captured
        kinds = [i.kind for i in demo.annotation.last_frame]
        assert "text" in kinds  # the CAPTURED banner

    def test_both_plugins_coexist(self):
        demo = OpenSteerDemo()
        demo.register(BoidsPlugIn(n=32, seed=1, engine="numpy"))
        demo.register(PursuitPlugIn())
        assert demo.plugin_names == ["Boids", "Pursuit"]
        demo.select("Boids")
        demo.run(1)
        demo.select("Pursuit")
        demo.run(1)
