"""Neighbor search: listing 5.2 semantics across all three engines."""

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.steer import (
    BoidsParams,
    NO_NEIGHBOR,
    Vec3,
    neighbor_search_all_kdtree,
    neighbor_search_all_numpy,
    neighbor_search_all_pure,
    neighbor_search_pure,
)

PARAMS = BoidsParams()


def line_positions(n, spacing=1.0):
    return [Vec3(i * spacing, 0.0, 0.0) for i in range(n)]


class TestPureSearch:
    def test_finds_nearest_within_radius(self):
        pos = line_positions(5, spacing=2.0)
        found = neighbor_search_pure(pos, 0, search_radius=5.0)
        assert found[:2] == [1, 2]
        assert found[2:] == [NO_NEIGHBOR] * 5

    def test_excludes_self(self):
        pos = [Vec3(0, 0, 0)] * 3  # all stacked at the origin
        found = neighbor_search_pure(pos, 1, search_radius=1.0)
        assert 1 not in found
        assert set(found[:2]) == {0, 2}

    def test_keeps_only_seven_nearest(self):
        pos = line_positions(20, spacing=0.5)
        found = neighbor_search_pure(pos, 0, search_radius=100.0)
        assert found == [1, 2, 3, 4, 5, 6, 7]

    def test_replacement_rule_keeps_closest(self):
        # Agents appear far-first so the replacement branch exercises.
        pos = [Vec3(0, 0, 0)] + [Vec3(10.0 - i, 0, 0) for i in range(9)]
        found = neighbor_search_pure(pos, 0, search_radius=100.0)
        dists = [pos[j].x for j in found]
        assert dists == sorted(dists)
        assert len(found) == 7
        assert max(dists) == 8.0  # the two farthest (x=9, x=10) got replaced

    def test_radius_is_exclusive(self):
        pos = [Vec3(0, 0, 0), Vec3(5.0, 0, 0)]
        assert neighbor_search_pure(pos, 0, search_radius=5.0)[0] == NO_NEIGHBOR
        assert neighbor_search_pure(pos, 0, search_radius=5.001)[0] == 1

    def test_isolated_agent_has_no_neighbors(self):
        pos = [Vec3(0, 0, 0), Vec3(1000, 0, 0)]
        assert neighbor_search_pure(pos, 0, 9.0) == [NO_NEIGHBOR] * 7


class TestEngineEquivalence:
    @pytest.mark.parametrize(
        "engine", [neighbor_search_all_numpy, neighbor_search_all_kdtree]
    )
    def test_matches_pure_on_random_cloud(self, engine):
        rng = np.random.default_rng(7)
        pts = rng.uniform(-20, 20, size=(64, 3))
        pure = neighbor_search_all_pure(
            [Vec3.from_tuple(p) for p in pts], PARAMS
        )
        fast = engine(pts, PARAMS)
        for i in range(64):
            assert set(pure[i]) == set(fast[i]), f"agent {i} differs"

    @pytest.mark.parametrize(
        "engine", [neighbor_search_all_numpy, neighbor_search_all_kdtree]
    )
    def test_sorted_by_distance(self, engine):
        rng = np.random.default_rng(3)
        pts = rng.uniform(-10, 10, size=(32, 3))
        result = engine(pts, PARAMS)
        for i in range(32):
            valid = [j for j in result[i] if j != NO_NEIGHBOR]
            dists = [np.sum((pts[i] - pts[j]) ** 2) for j in valid]
            assert dists == sorted(dists)

    @pytest.mark.parametrize(
        "engine", [neighbor_search_all_numpy, neighbor_search_all_kdtree]
    )
    def test_tiny_populations(self, engine):
        for n in (1, 2, 3):
            pts = np.zeros((n, 3))
            result = engine(pts, PARAMS)
            assert result.shape == (n, PARAMS.max_neighbors)
            for i in range(n):
                assert i not in set(result[i])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 40), st.integers(0, 2**31 - 1))
    def test_engines_agree_property(self, n, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-15, 15, size=(n, 3))
        a = neighbor_search_all_numpy(pts, PARAMS)
        b = neighbor_search_all_kdtree(pts, PARAMS)
        for i in range(n):
            assert set(a[i]) == set(b[i])

    def test_blocked_bruteforce_matches_unblocked(self):
        rng = np.random.default_rng(11)
        pts = rng.uniform(-20, 20, size=(100, 3))
        whole = neighbor_search_all_numpy(pts, PARAMS, block=4096)
        blocked = neighbor_search_all_numpy(pts, PARAMS, block=17)
        np.testing.assert_array_equal(whole, blocked)

    @pytest.mark.parametrize(
        "engine", [neighbor_search_all_numpy, neighbor_search_all_kdtree]
    )
    def test_cohort_restriction_fills_only_cohort_rows(self, engine):
        # The think-frequency path (§5.3): only the cohort searches.
        rng = np.random.default_rng(13)
        pts = rng.uniform(-15, 15, size=(50, 3))
        cohort = np.arange(3, 50, 10)
        full = engine(pts, PARAMS)
        partial = engine(pts, PARAMS, rows=cohort)
        np.testing.assert_array_equal(partial[cohort], full[cohort])
        others = np.setdiff1d(np.arange(50), cohort)
        assert (partial[others] == NO_NEIGHBOR).all()

    def test_cohort_restriction_through_dispatcher(self):
        from repro.steer import neighbor_search_all

        rng = np.random.default_rng(14)
        pts = rng.uniform(-15, 15, size=(40, 3))
        cohort = np.array([0, 7, 21])
        a = neighbor_search_all(pts, PARAMS, engine="numpy", rows=cohort)
        b = neighbor_search_all(pts, PARAMS, engine="kdtree", rows=cohort)
        for i in cohort:
            assert set(a[i]) == set(b[i])
