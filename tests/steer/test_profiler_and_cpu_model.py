"""Stage profiler and the Athlon CPU cost model."""

import pytest

from repro.steer import CpuCostModel, DEFAULT_CPU_MODEL, STAGES, StageProfile


class TestStageProfile:
    def test_shares_sum_to_one(self):
        p = StageProfile()
        p.add("neighbor_search", 820)
        p.add("steering", 130)
        p.add("modification", 50)
        assert sum(p.breakdown().values()) == pytest.approx(1.0)

    def test_update_share_excludes_draw(self):
        p = StageProfile()
        p.add("neighbor_search", 80)
        p.add("steering", 20)
        p.add("draw", 900)
        assert p.update_share("neighbor_search") == pytest.approx(0.8)
        assert p.share("neighbor_search") == pytest.approx(0.08)

    def test_unknown_stage_rejected(self):
        with pytest.raises(KeyError):
            StageProfile().add("render", 1)

    def test_empty_profile_has_zero_shares(self):
        p = StageProfile()
        assert p.share("draw") == 0.0
        assert p.update_share("steering") == 0.0

    def test_merge(self):
        a, b = StageProfile(), StageProfile()
        a.add("draw", 10)
        b.add("draw", 5)
        b.add("steering", 1)
        merged = a.merged(b)
        assert merged.cycles["draw"] == 15
        assert merged.cycles["steering"] == 1
        assert a.cycles["draw"] == 10  # originals untouched

    def test_stage_names_cover_the_pipeline(self):
        assert ("neighbor_search", "steering", "modification", "draw") == STAGES[:4]


class TestCpuCostModel:
    def test_neighbor_search_is_quadratic(self):
        m = DEFAULT_CPU_MODEL
        assert m.neighbor_search_cycles(2000, 2000) == pytest.approx(
            4 * m.neighbor_search_cycles(1000, 1000)
        )

    def test_think_frequency_scales_thinkers_only(self):
        m = DEFAULT_CPU_MODEL
        full = m.update_cycles(1000, 1000)
        tenth = m.update_cycles(1000, 100)
        # Modification + overhead unchanged; search+steering scale by 10.
        saved = full - tenth
        expected = 0.9 * (
            m.neighbor_search_cycles(1000, 1000) + m.steering_cycles(1000)
        )
        assert saved == pytest.approx(expected)

    def test_seconds_uses_cpu_clock(self):
        m = DEFAULT_CPU_MODEL
        assert m.seconds(m.cpu.clock_hz) == pytest.approx(1.0)

    def test_draw_is_linear(self):
        m = DEFAULT_CPU_MODEL
        assert m.draw_seconds(2000) == pytest.approx(2 * m.draw_seconds(1000))

    def test_custom_constants(self):
        m = CpuCostModel(cycles_per_candidate=100.0)
        assert m.neighbor_search_cycles(10, 10) == 10_000
