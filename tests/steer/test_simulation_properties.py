"""Property-based invariants of the Boids simulation."""

import dataclasses

import hypothesis.strategies as st
import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.steer import BoidsParams, Simulation

params_strategy = st.builds(
    BoidsParams,
    world_radius=st.floats(10.0, 80.0),
    search_radius=st.floats(1.0, 15.0),
    max_speed=st.floats(1.0, 20.0),
    max_force=st.floats(5.0, 60.0),
    think_every=st.sampled_from([1, 3, 10]),
)


class TestSimulationInvariants:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(params=params_strategy, n=st.integers(4, 48), seed=st.integers(0, 2**16))
    def test_physical_invariants_hold(self, params, n, seed):
        sim = Simulation(n, params, seed=seed, engine="numpy")
        sim.run(8)
        # Speeds never exceed the limit.
        assert sim.speeds.max() <= params.max_speed * (1 + 1e-9)
        # Positions stay within one overshoot step of the world sphere.
        radii = np.linalg.norm(sim.positions, axis=1)
        assert radii.max() <= params.world_radius + params.max_speed * params.dt
        # Forward vectors stay unit length.
        norms = np.linalg.norm(sim.forwards, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)
        # No NaNs ever.
        for arr in (sim.positions, sim.forwards, sim.speeds, sim.steering):
            assert np.isfinite(arr).all()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_determinism(self, seed):
        a = Simulation(24, seed=seed, engine="numpy")
        b = Simulation(24, seed=seed, engine="numpy")
        a.run(5)
        b.run(5)
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.speeds, b.speeds)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(4, 32), seed=st.integers(0, 2**16))
    def test_profile_monotone(self, n, seed):
        sim = Simulation(n, seed=seed, engine="numpy")
        totals = []
        for _ in range(3):
            sim.frame()
            totals.append(sim.profile.total)
        assert totals == sorted(totals)
        assert totals[0] > 0
