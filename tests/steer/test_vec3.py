"""Vec3 algebra: unit tests + hypothesis property tests."""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.steer import UNIT_X, UNIT_Y, UNIT_Z, Vec3, ZERO

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
vec3s = st.builds(Vec3, finite, finite, finite)


class TestBasics:
    def test_defaults_to_zero(self):
        assert Vec3() == ZERO

    def test_arithmetic(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 5, 6)
        assert a + b == Vec3(5, 7, 9)
        assert b - a == Vec3(3, 3, 3)
        assert a * 2 == Vec3(2, 4, 6)
        assert 2 * a == Vec3(2, 4, 6)
        assert a / 2 == Vec3(0.5, 1.0, 1.5)
        assert -a == Vec3(-1, -2, -3)

    def test_dot_and_cross(self):
        assert Vec3(1, 2, 3).dot(Vec3(4, 5, 6)) == 32
        assert UNIT_X.cross(UNIT_Y) == UNIT_Z

    def test_length(self):
        assert Vec3(3, 4, 0).length() == pytest.approx(5.0)
        assert Vec3(3, 4, 0).length_squared() == pytest.approx(25.0)

    def test_distance(self):
        assert Vec3(1, 0, 0).distance(Vec3(4, 4, 0)) == pytest.approx(5.0)

    def test_normalize_zero_is_zero(self):
        assert ZERO.normalize() == ZERO

    def test_truncate_length(self):
        v = Vec3(6, 8, 0)
        assert v.truncate_length(5).length() == pytest.approx(5.0)
        assert v.truncate_length(100) == v

    def test_components(self):
        v = Vec3(3, 4, 0)
        par = v.parallel_component(UNIT_X)
        perp = v.perpendicular_component(UNIT_X)
        assert par == Vec3(3, 0, 0)
        assert perp == Vec3(0, 4, 0)

    def test_tuple_roundtrip(self):
        v = Vec3(1.5, -2.5, 3.5)
        assert Vec3.from_tuple(v.as_tuple()) == v

    def test_immutability(self):
        with pytest.raises(Exception):
            Vec3(1, 2, 3).x = 9


class TestProperties:
    @given(vec3s, vec3s)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(vec3s)
    def test_sub_self_is_zero(self, a):
        assert a - a == ZERO

    @given(vec3s)
    @settings(max_examples=200)
    def test_normalize_is_unit_or_zero(self, a):
        n = a.normalize()
        if a == ZERO:
            assert n == ZERO
        else:
            # normalize pre-scales by the max component, so even
            # subnormal-range vectors come out unit to full precision.
            assert n.length() == pytest.approx(1.0, rel=1e-9)

    @given(vec3s, vec3s)
    def test_cross_is_orthogonal(self, a, b):
        c = a.cross(b)
        scale = max(a.length() * b.length(), 1.0)
        assert abs(c.dot(a)) <= 1e-6 * scale * max(c.length(), 1.0)

    @given(vec3s, finite)
    def test_scalar_distributes(self, a, s):
        left = (a + a) * s
        right = a * s + a * s
        assert left.distance(right) <= 1e-9 * max(1.0, left.length())

    @given(vec3s, st.floats(0.001, 1e5))
    def test_truncate_never_exceeds(self, a, cap):
        assert a.truncate_length(cap).length() <= cap * (1 + 1e-9)

    @given(vec3s, vec3s)
    def test_triangle_inequality(self, a, b):
        assert (a + b).length() <= a.length() + b.length() + 1e-6

    @given(vec3s)
    def test_parallel_plus_perpendicular_reconstructs(self, a):
        basis = UNIT_Y
        rebuilt = a.parallel_component(basis) + a.perpendicular_component(basis)
        assert rebuilt.distance(a) <= 1e-9 * max(1.0, a.length())
